// ShardedIngestor: the write side of the sharded serve layer, run as a
// two-stage software pipeline.
//
//                       ┌──────────────── ShardedIngestor ────────────────┐
//   ServeDelta ──▶ queue ─▶ coordinator ─▶ plane ring (graph + features:  │
//     (Submit)            (coalesce +      buffer N+1 PREPARES while      │
//                          route by        buffer N is absorbed)          │
//                          u1 range,        │ read-only hand-off          │
//                          assign      ┌────┴────┬─────────┐              │
//                          global      ▼         ▼         ▼              │
//                          link    executor 0 executor 1  ...             │
//                          ids)    ModelShard ModelShard (persistent      │
//                                      │         │         threads)       │
//                                      ▼         ▼   per-shard publish    │
//                                   AlignmentService per shard ───────────┼─▶ ShardRouter
//                       └──────────────────────────────────────────────── ┘  (QueryBackend)
//
// Stage 1 (coordinator): validate → graph apply → SpGEMM refresh → route.
// Stage 2 (shard executors): downdate/replace/append rows → PU realign →
// snapshot publish, one persistent thread per shard (mailbox + condition
// variable, started once at StartBackground, joined at Stop — steady-state
// drains spawn zero threads).
//
// The pipeline: the plane is a ring of pipeline_depth + 1 buffers. Drain
// N's slices absorb against buffer N mod (d+1) while the coordinator
// catches buffer (N+1) mod (d+1) up (replaying the drains it missed from a
// short graph-delta history) and prepares drain N+1 on it. Acquiring a
// still-busy buffer blocks the coordinator — that wait is the backpressure
// (counted in IngestStats::pipeline_stalls), and with depth 0 (one buffer)
// it degenerates to the strictly serial coordinator. Shards publish their
// epochs independently as each slice completes — there is no whole-drain
// barrier; the router's epoch() = slowest shard already tolerates the
// skew, and each shard still sees every drain in submission order, so
// published epochs are bitwise-identical to the serial schedule at every
// depth. (Replaying a drain onto a buffer may mark a SUPERSET of the
// serial dirty columns; that is harmless because the replace pass
// value-compares each row against the design matrix before absorbing.)
//
// Model semantics: each shard trains the PU alternation on its own slice.
// With one shard this is bit-for-bit the unsharded DeltaIngestor (same
// plane + shard composition; proven by the N=1 equivalence test); with N
// shards each slice's model equals an independent single ingestor run
// over that slice (the plane's feature state depends only on the graph,
// never on the candidate set; proven by the N∈{2,4} equivalence test),
// trading cross-shard one-to-one coupling on second-network users for
// shard-parallel ingest.
//
// Global link ids are assigned at drain time, in submission order across
// all shards, so ids are stable across shard counts and the router's
// merged answers are comparable run-to-run.
//
// Failure model: a batch that fails validation (bad graph delta, bad
// candidate endpoint) is rejected before anything mutates. A model-side
// failure inside a shard makes the background status sticky — up to
// pipeline_depth later drains may already sit in executor mailboxes when
// it surfaces; their absorbs are skipped (the read side keeps serving
// every shard's last published epoch) and everything submitted after is
// discarded at drain time.

#ifndef ACTIVEITER_SERVE_SHARD_H_
#define ACTIVEITER_SERVE_SHARD_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/graph/partition.h"
#include "src/serve/ingestor.h"
#include "src/serve/router.h"

namespace activeiter {

/// Splits one incoming batch into per-shard batches: the graph delta is
/// replicated to every shard (slices must stay aligned with the shared
/// plane), new candidates go to the shard owning their first endpoint,
/// and each candidate is stamped with a global link id starting at
/// `first_global_id`. Candidate removals route by the same first-endpoint
/// rule — pairs, not ids, so no cross-shard id map is needed. The
/// incoming batch must not carry ids already.
std::vector<ServeDelta> RouteServeDelta(const ServeDelta& delta,
                                        const ShardPartition& partition,
                                        size_t first_global_id);

/// A plane ring + N ModelShards over disjoint candidate slices plus the
/// ShardRouter serving them. Mirrors the DeltaIngestor lifecycle
/// (Start → ApplyOnce | StartBackground/Submit/Flush/Stop); queries go
/// through backend().
class ShardedIngestor {
 public:
  /// Takes ownership of the initial state and splits it across
  /// `options.partition.num_shards` shards. The pair and the labeled
  /// bridge L+ live once per plane buffer (pipeline_depth + 1 of them);
  /// candidate ownership follows the partition.
  ShardedIngestor(AlignedPair pair, std::vector<AnchorLink> train_anchors,
                  CandidateLinkSet candidates, IngestorOptions options = {});

  ~ShardedIngestor();

  ShardedIngestor(const ShardedIngestor&) = delete;
  ShardedIngestor& operator=(const ShardedIngestor&) = delete;

  /// Starts every shard against the primary plane (one full feature
  /// refresh total; one Gram factorisation per shard), publishes epoch 0
  /// on all of them, and clones the extra pipeline plane buffers.
  Status Start();

  /// Routes one batch and applies it synchronously, shard after shard.
  /// Deterministic; shard epochs stay in lock-step and every plane buffer
  /// advances together.
  Status ApplyOnce(const ServeDelta& delta);

  /// Background ingest: one coordinator thread that drains the queue
  /// (coalescing per the drain policy) and prepares plane buffers, plus
  /// one persistent executor thread per shard absorbing the slices.
  void StartBackground();

  /// Enqueues a batch. The batch must not carry global link ids — this
  /// layer assigns them, in submission order, at drain time. Blocks when
  /// options().submit_queue_limit batches are already queued
  /// (backpressure; counted as a pipeline stall).
  void Submit(ServeDelta delta);

  /// Blocks until every submitted batch has been applied and published.
  void Flush();

  /// Drains the queue and the executor mailboxes, joins the coordinator
  /// and every executor, and catches the primary plane up (idempotent).
  void Stop();

  /// First error reported by the coordinator (sticky; batches submitted
  /// after an error are discarded).
  Status background_status() const;

  /// The query surface. Valid for the ingestor's lifetime; safe for any
  /// number of concurrent readers.
  const QueryBackend& backend() const { return *router_; }
  const ShardRouter& router() const { return *router_; }

  size_t num_shards() const { return shards_.size(); }
  const ShardPartition& partition() const { return options_.partition; }
  const IngestorOptions& options() const { return options_; }

  /// Ingest accounting. Drain-level counters (epochs_published,
  /// deltas_applied, coalesced_batches) advance in lock-step on every
  /// shard and are reported once; per-row counters (rows_appended,
  /// rows_removed, rows_replaced, rank_one_updates, full_factorisations)
  /// are summed across shards — full_factorisations equals num_shards
  /// after Start(). pipeline_stalls / max_inflight_planes are
  /// coordinator-level: max_inflight_planes ≥ 2 proves prepare/absorb
  /// actually overlapped; serial operation reports 0 / 1.
  IngestStats stats() const;
  IngestStats shard_stats(size_t shard) const;

  // Per-shard internals for tests and equivalence comparisons. NOT safe
  // while the coordinator runs.
  const AlignedPair& pair() const { return plane_.pair(); }
  const ModelShard& shard(size_t shard) const;
  const AlignmentService& shard_service(size_t shard) const;

 private:
  class ShardExecutor;

  /// One routed slice travelling from the coordinator to a shard
  /// executor. The plane buffer it points at stays immutable until every
  /// shard of its drain completed (the ring acquisition guarantees it).
  struct SliceTask {
    const FeaturePlane* plane = nullptr;
    std::shared_ptr<const std::vector<size_t>> dirty_columns;
    ServeDelta slice;
    size_t submitted_batches = 0;
    uint64_t seq = 0;
  };

  /// Completion bookkeeping of one dispatched drain.
  struct DrainTicket {
    uint64_t seq = 0;
    size_t buffer = 0;
    size_t remaining = 0;   // shards still absorbing
    size_t submitted = 0;   // Submit() calls this drain coalesces
  };

  void WorkerLoop();
  /// Deterministic path: validate → advance EVERY plane buffer → refresh
  /// the primary → route → shard applies, sequential on this thread.
  Status ApplyMerged(const ServeDelta& merged, size_t submitted_batches);
  /// Pipelined path: acquire the drain's ring buffer (blocking while it
  /// is still being absorbed), replay missed drains onto it, prepare the
  /// new drain and hand the slices to the executors. Returns without
  /// waiting for the absorbs.
  Status PrepareDrain(const ServeDelta& merged, size_t submitted_batches);
  /// Replays graph deltas the buffer missed while other buffers ran.
  void CatchUpBuffer(size_t buffer);
  void TrimHistory();
  /// Executor callback: a shard finished (or skipped) drain `seq`.
  void OnSliceDone(uint64_t seq, const Status& status);

  IngestorOptions options_;
  FeaturePlane plane_;  // ring_[0]; the buffer tests/readers introspect
  /// Submitted-but-unpublished batches; null when metrics are detached.
  Gauge* epoch_lag_ = nullptr;
  Gauge* pipeline_inflight_ = nullptr;   // "ingest.pipeline.depth"
  Counter* pipeline_stall_counter_ = nullptr;
  std::vector<std::unique_ptr<AlignmentService>> services_;
  std::vector<std::unique_ptr<ModelShard>> shards_;
  std::unique_ptr<ShardRouter> router_;
  size_t next_global_id_ = 0;

  // The plane ring (built at Start): pipeline_depth extra clones of the
  // primary plane, used round-robin by drain sequence number.
  std::vector<std::unique_ptr<FeaturePlane>> clone_planes_;
  std::vector<FeaturePlane*> ring_;
  std::vector<uint64_t> ring_applied_;   // last drain seq each buffer holds
  std::vector<bool> ring_busy_;          // being absorbed (guarded by mu_)
  // Committed drains a stale buffer may still need to replay; trimmed to
  // min(ring_applied_), so it never holds more than ring_.size() entries
  // in background operation.
  std::deque<std::pair<uint64_t, PairDelta>> graph_history_;
  uint64_t drain_seq_ = 0;               // committed drains

  // Persistent per-shard absorb threads (live between StartBackground
  // and Stop).
  std::vector<std::unique_ptr<ShardExecutor>> executors_;
  std::deque<DrainTicket> tickets_;      // guarded by mu_

  // Coordinator queue (same discipline as DeltaIngestor's).
  std::thread worker_;
  mutable std::mutex mu_;
  std::condition_variable cv_;           // queue not empty / stopping
  std::condition_variable idle_cv_;      // queue drained + drains landed
  std::condition_variable plane_free_cv_;   // a ring buffer was released
  std::condition_variable queue_space_cv_;  // Submit backpressure
  std::deque<ServeDelta> queue_;
  size_t in_flight_ = 0;                 // batches drained, not published
  size_t inflight_drains_ = 0;           // drains between dispatch/publish
  uint64_t max_inflight_ = 0;            // high-water of inflight_drains_
  uint64_t stall_count_ = 0;             // backpressure waits
  bool stopping_ = false;
  bool thread_running_ = false;
  Status background_status_ = Status::OK();
};

}  // namespace activeiter

#endif  // ACTIVEITER_SERVE_SHARD_H_
