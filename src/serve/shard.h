// ShardedIngestor: the write side of the sharded serve layer.
//
//                       ┌──────────────── ShardedIngestor ────────────────┐
//   ServeDelta ──▶ queue ─▶ coordinator ─▶ FeaturePlane (graph + features,│
//     (Submit)            (coalesce +        refreshed ONCE per drain)    │
//                          route by          │ shared, read-only fan-out  │
//                          u1 range,    ┌────┴────┬─────────┐             │
//                          assign       ▼         ▼         ▼             │
//                          global    shard 0   shard 1    ...             │
//                          link ids) ModelShard ModelShard (parallel      │
//                                       │         │         realigns)     │
//                                       ▼         ▼                       │
//                                    AlignmentService per shard ──────────┼─▶ ShardRouter
//                       └─────────────────────────────────────────────────┘   (QueryBackend)
//
// The split that makes this scale: whole-graph work (delta application,
// dirty-diagram recomputation, proximity tables) lives in ONE shared
// FeaturePlane and runs once per drain, while per-candidate work (row
// gathers, Gram rank-1 updates, the PU realign, snapshot builds) is
// partitioned across N ModelShards that consume the refreshed plane
// concurrently — each owns a disjoint user-range slice of H with its own
// RidgePrepared, AlignmentSession and snapshot chain, and shards share
// nothing mutable.
//
// Model semantics: each shard trains the PU alternation on its own slice.
// With one shard this is bit-for-bit the unsharded DeltaIngestor (same
// plane + shard composition; proven by the N=1 equivalence test); with N
// shards each slice's model equals an independent single ingestor run
// over that slice (the plane's feature state depends only on the graph,
// never on the candidate set; proven by the N∈{2,4} equivalence test),
// trading cross-shard one-to-one coupling on second-network users for
// shard-parallel ingest.
//
// Global link ids are assigned at drain time, in submission order across
// all shards, so ids are stable across shard counts and the router's
// merged answers are comparable run-to-run.
//
// Failure model: a batch that fails validation (bad graph delta, bad
// candidate endpoint) is rejected before anything mutates. A model-side
// failure inside a shard (numerical breakdown in a session op) makes the
// background status sticky — the write side stops, the read side keeps
// serving every shard's last published epoch.

#ifndef ACTIVEITER_SERVE_SHARD_H_
#define ACTIVEITER_SERVE_SHARD_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/graph/partition.h"
#include "src/serve/ingestor.h"
#include "src/serve/router.h"

namespace activeiter {

/// Splits one incoming batch into per-shard batches: the graph delta is
/// replicated to every shard (slices must stay aligned with the shared
/// plane), new candidates go to the shard owning their first endpoint,
/// and each candidate is stamped with a global link id starting at
/// `first_global_id`. Candidate removals route by the same first-endpoint
/// rule — pairs, not ids, so no cross-shard id map is needed. The
/// incoming batch must not carry ids already.
std::vector<ServeDelta> RouteServeDelta(const ServeDelta& delta,
                                        const ShardPartition& partition,
                                        size_t first_global_id);

/// One FeaturePlane + N ModelShards over disjoint candidate slices plus
/// the ShardRouter serving them. Mirrors the DeltaIngestor lifecycle
/// (Start → ApplyOnce | StartBackground/Submit/Flush/Stop); queries go
/// through backend().
class ShardedIngestor {
 public:
  /// Takes ownership of the initial state and splits it across
  /// `options.partition.num_shards` shards. The pair and the labeled
  /// bridge L+ live once, in the shared plane; candidate ownership
  /// follows the partition.
  ShardedIngestor(AlignedPair pair, std::vector<AnchorLink> train_anchors,
                  CandidateLinkSet candidates, IngestorOptions options = {});

  ~ShardedIngestor();

  ShardedIngestor(const ShardedIngestor&) = delete;
  ShardedIngestor& operator=(const ShardedIngestor&) = delete;

  /// Starts every shard against the shared plane (one full feature
  /// refresh total; one Gram factorisation per shard) and publishes
  /// epoch 0 on all of them.
  Status Start();

  /// Routes one batch and applies it synchronously, shard after shard.
  /// Deterministic; shard epochs stay in lock-step.
  Status ApplyOnce(const ServeDelta& delta);

  /// Background ingest: one coordinator thread that drains the queue
  /// (coalescing per the drain policy), advances the plane once, then
  /// applies all shard slices in parallel.
  void StartBackground();

  /// Enqueues a batch. The batch must not carry global link ids — this
  /// layer assigns them, in submission order, at drain time.
  void Submit(ServeDelta delta);

  /// Blocks until every submitted batch has been applied and published.
  void Flush();

  /// Drains the queue and joins the coordinator (idempotent).
  void Stop();

  /// First error reported by the coordinator (sticky; batches submitted
  /// after an error are discarded).
  Status background_status() const;

  /// The query surface. Valid for the ingestor's lifetime; safe for any
  /// number of concurrent readers.
  const QueryBackend& backend() const { return *router_; }
  const ShardRouter& router() const { return *router_; }

  size_t num_shards() const { return shards_.size(); }
  const ShardPartition& partition() const { return options_.partition; }
  const IngestorOptions& options() const { return options_; }

  /// Ingest accounting. Drain-level counters (epochs_published,
  /// deltas_applied, coalesced_batches) advance in lock-step on every
  /// shard and are reported once; per-row counters (rows_appended,
  /// rows_removed, rows_replaced, rank_one_updates, full_factorisations)
  /// are summed
  /// across shards — full_factorisations equals num_shards after Start().
  IngestStats stats() const;
  IngestStats shard_stats(size_t shard) const;

  // Per-shard internals for tests and equivalence comparisons. NOT safe
  // while the coordinator runs.
  const AlignedPair& pair() const { return plane_.pair(); }
  const ModelShard& shard(size_t shard) const;
  const AlignmentService& shard_service(size_t shard) const;

 private:
  void WorkerLoop();
  /// Validate → plane Apply/Refresh → route → shard fan-out (sequential
  /// in deterministic mode, one thread per shard under the coordinator).
  Status ApplyMerged(const ServeDelta& merged, size_t submitted_batches,
                     bool parallel_shards);

  IngestorOptions options_;
  FeaturePlane plane_;
  /// Submitted-but-unpublished batches; null when metrics are detached.
  Gauge* epoch_lag_ = nullptr;
  std::vector<std::unique_ptr<AlignmentService>> services_;
  std::vector<std::unique_ptr<ModelShard>> shards_;
  std::unique_ptr<ShardRouter> router_;
  size_t next_global_id_ = 0;

  // Coordinator queue (same discipline as DeltaIngestor's).
  std::thread worker_;
  mutable std::mutex mu_;
  std::condition_variable cv_;        // queue not empty / stopping
  std::condition_variable idle_cv_;   // queue drained
  std::deque<ServeDelta> queue_;
  size_t in_flight_ = 0;
  bool stopping_ = false;
  bool thread_running_ = false;
  Status background_status_ = Status::OK();
};

}  // namespace activeiter

#endif  // ACTIVEITER_SERVE_SHARD_H_
