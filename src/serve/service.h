// AlignmentService: the thread-safe query front end of the online
// subsystem — the single-slice QueryBackend implementation.
//
// Serving protocol (epoch publication):
//
//   readers            service                ingestor
//   ───────            ───────                ────────
//   snapshot() ──────▶ atomic_load ptr        build epoch e+1 offline
//   TopKFor/ScorePair  (no lock, refcount)    Publish(e+1): atomic_store
//   keep using e ◀──── old epochs stay alive  old ptr freed when last
//                      as long as referenced  reader drops it
//
// Queries therefore never block on ingest, never observe a half-built
// epoch, and never race the swap: the only shared word is the shared_ptr
// control block, accessed through std::atomic_load/atomic_store.
//
// Surface note: query callers hold this (or a ShardRouter fanning over N
// of these) as a QueryBackend* — see backend.h for the contract. The
// Publish/snapshot methods below are the write-side coupling to the
// ingestor and are not part of the query surface.

#ifndef ACTIVEITER_SERVE_SERVICE_H_
#define ACTIVEITER_SERVE_SERVICE_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/obs/metrics.h"
#include "src/serve/backend.h"
#include "src/serve/snapshot.h"

namespace activeiter {

/// Concurrent score/match query API over the latest published snapshot.
class AlignmentService : public QueryBackend {
 public:
  AlignmentService() = default;

  /// The current snapshot (nullptr before the first Publish). Callers may
  /// hold the pointer across any number of later publishes. Write-side /
  /// test API; query callers stay on the QueryBackend surface.
  std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// Epoch of the current snapshot, or kNoEpoch before the first publish.
  uint64_t epoch() const override;

  /// Atomically swaps in a new epoch. Single-writer (the ingest thread);
  /// epochs must be published in increasing order (checked).
  void Publish(std::shared_ptr<const ModelSnapshot> next);

  /// QueryBackend: top-k links of `u1`, score desc, ties by ascending
  /// global link id. Users unknown to the published epoch get an empty
  /// result, not an error — the serving contract is "answers as of the
  /// published epoch".
  Result<std::vector<ScoredLink>> TopKFor(NodeId u1,
                                          size_t k) const override;

  /// QueryBackend: the scored view of candidate (u1, u2); NotFound when
  /// the pair is not a candidate in the published epoch.
  Result<ScoredLink> ScorePair(NodeId u1, NodeId u2) const override;

  /// Attaches per-query latency histograms ("serve.query.topk_us" /
  /// "serve.query.score_pair_us"). Call before readers start (the owning
  /// ingestor does, at construction); detached queries skip the clock
  /// reads entirely.
  void set_metrics(MetricsRegistry* metrics);

 private:
  std::shared_ptr<const ModelSnapshot> snapshot_;  // std::atomic_load/store
  Histogram* topk_latency_ = nullptr;
  Histogram* score_pair_latency_ = nullptr;
};

}  // namespace activeiter

#endif  // ACTIVEITER_SERVE_SERVICE_H_
