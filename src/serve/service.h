// AlignmentService: the thread-safe query front end of the online
// subsystem.
//
// Serving protocol (epoch publication):
//
//   readers            service                ingestor
//   ───────            ───────                ────────
//   snapshot() ──────▶ atomic_load ptr        build epoch e+1 offline
//   TopKFor/ScorePair  (no lock, refcount)    Publish(e+1): atomic_store
//   keep using e ◀──── old epochs stay alive  old ptr freed when last
//                      as long as referenced  reader drops it
//
// Queries therefore never block on ingest, never observe a half-built
// epoch, and never race the swap: the only shared word is the shared_ptr
// control block, accessed through std::atomic_load/atomic_store.

#ifndef ACTIVEITER_SERVE_SERVICE_H_
#define ACTIVEITER_SERVE_SERVICE_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/serve/snapshot.h"

namespace activeiter {

/// Concurrent score/match query API over the latest published snapshot.
class AlignmentService {
 public:
  AlignmentService() = default;

  /// The current snapshot (nullptr before the first Publish). Callers may
  /// hold the pointer across any number of later publishes.
  std::shared_ptr<const ModelSnapshot> snapshot() const;

  /// Epoch of the current snapshot, or kNoEpoch before the first publish.
  static constexpr uint64_t kNoEpoch = ~uint64_t{0};
  uint64_t epoch() const;

  /// Atomically swaps in a new epoch. Single-writer (the ingest thread);
  /// epochs must be published in increasing order (checked).
  void Publish(std::shared_ptr<const ModelSnapshot> next);

  /// Top-k candidate links of user `u1` of the first network, by score
  /// descending (ties by link id). Users unknown to the snapshot's epoch
  /// (e.g. added by an ingest batch that has not published yet) get an
  /// empty result, not an error — the serving contract is "answers as of
  /// the published epoch".
  Result<std::vector<ScoredLink>> TopKFor(NodeId u1, size_t k) const;

  /// The scored view of candidate (u1, u2); NotFound when the pair is not
  /// a candidate in the published epoch.
  Result<ScoredLink> ScorePair(NodeId u1, NodeId u2) const;

 private:
  std::shared_ptr<const ModelSnapshot> snapshot_;  // std::atomic_load/store
};

}  // namespace activeiter

#endif  // ACTIVEITER_SERVE_SERVICE_H_
