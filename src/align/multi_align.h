// Multi-network alignment composition (extension).
//
// The paper notes that "simple extensions of the model can be applied to
// multiple (more than two) aligned social networks". This module provides
// those extensions on the inference side: composing pairwise alignments
// transitively (G1~G2 ∘ G2~G3 → G1~G3), measuring the transitive
// consistency of three pairwise alignments, and reconciling a direct
// alignment with a composed one.

#ifndef ACTIVEITER_ALIGN_MULTI_ALIGN_H_
#define ACTIVEITER_ALIGN_MULTI_ALIGN_H_

#include <vector>

#include "src/graph/aligned_pair.h"

namespace activeiter {

/// Composes two one-to-one alignments through their shared middle network:
/// (u1, u2) ∈ a12 and (u2, u3) ∈ a23 yield (u1, u3). Inputs need not be
/// one-to-one; outputs preserve whatever multiplicity the inputs imply.
std::vector<AnchorLink> ComposeAlignments(
    const std::vector<AnchorLink>& a12, const std::vector<AnchorLink>& a23);

/// Fraction of links in `composed` that also appear in `direct` —
/// the transitive-consistency score of three pairwise alignments
/// (1.0 = perfectly consistent). Returns 1.0 when `composed` is empty.
double TransitiveConsistency(const std::vector<AnchorLink>& composed,
                             const std::vector<AnchorLink>& direct);

/// Reconciles a direct 1-3 alignment with the 1-2 ∘ 2-3 composition:
/// links appearing in both are kept first (high confidence), then the
/// remaining direct links, then the remaining composed links, all subject
/// to the one-to-one constraint (first come, first served). Deterministic.
struct ReconciledAlignment {
  std::vector<AnchorLink> links;
  size_t agreed = 0;          // links confirmed by both sources
  size_t direct_only = 0;     // kept from the direct alignment only
  size_t composed_only = 0;   // kept from the composition only
};
ReconciledAlignment ReconcileAlignments(
    const std::vector<AnchorLink>& direct,
    const std::vector<AnchorLink>& composed);

}  // namespace activeiter

#endif  // ACTIVEITER_ALIGN_MULTI_ALIGN_H_
