// SVM baselines (SVM-MP and SVM-MPMD): a classic supervised classifier
// trained on the labeled fold, predicting each test link independently —
// no PU learning, no cardinality constraint, no queries. Feature choice
// (meta paths only vs meta paths + diagrams) is the caller's, via the
// FeatureExtractor it uses to build the datasets.

#ifndef ACTIVEITER_ALIGN_SVM_ALIGNER_H_
#define ACTIVEITER_ALIGN_SVM_ALIGNER_H_

#include "src/common/status.h"
#include "src/learn/dataset.h"
#include "src/learn/linear_svm.h"

namespace activeiter {

/// Thin wrapper running the SVM baseline: train on `train`, return {0,+1}
/// predictions for every row of `test_features`.
class SvmAligner {
 public:
  explicit SvmAligner(SvmOptions options = {}) : options_(options) {}

  /// Fails if the training set is empty or single-class in a way that
  /// prevents training (zero positives is allowed — matches the paper's
  /// degenerate SVM-MP rows — and yields the all-negative predictor).
  Result<Vector> Run(const Dataset& train, const Matrix& test_features) const;

  const SvmOptions& options() const { return options_; }

 private:
  SvmOptions options_;
};

}  // namespace activeiter

#endif  // ACTIVEITER_ALIGN_SVM_ALIGNER_H_
