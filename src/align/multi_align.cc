#include "src/align/multi_align.h"

#include <algorithm>
#include <set>
#include <unordered_map>
#include <unordered_set>

namespace activeiter {
namespace {

uint64_t Key(const AnchorLink& a) {
  return (static_cast<uint64_t>(a.u1) << 32) | a.u2;
}

}  // namespace

std::vector<AnchorLink> ComposeAlignments(
    const std::vector<AnchorLink>& a12, const std::vector<AnchorLink>& a23) {
  // Index a23 by its first endpoint (the shared middle network's user).
  std::unordered_map<NodeId, std::vector<NodeId>> targets_of_middle;
  for (const auto& link : a23) {
    targets_of_middle[link.u1].push_back(link.u2);
  }
  std::vector<AnchorLink> composed;
  for (const auto& link : a12) {
    auto it = targets_of_middle.find(link.u2);
    if (it == targets_of_middle.end()) continue;
    for (NodeId u3 : it->second) {
      composed.push_back({link.u1, u3});
    }
  }
  std::sort(composed.begin(), composed.end());
  composed.erase(std::unique(composed.begin(), composed.end()),
                 composed.end());
  return composed;
}

double TransitiveConsistency(const std::vector<AnchorLink>& composed,
                             const std::vector<AnchorLink>& direct) {
  if (composed.empty()) return 1.0;
  std::unordered_set<uint64_t> direct_keys;
  direct_keys.reserve(direct.size() * 2);
  for (const auto& link : direct) direct_keys.insert(Key(link));
  size_t hits = 0;
  for (const auto& link : composed) {
    if (direct_keys.count(Key(link))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(composed.size());
}

ReconciledAlignment ReconcileAlignments(
    const std::vector<AnchorLink>& direct,
    const std::vector<AnchorLink>& composed) {
  std::unordered_set<uint64_t> composed_keys;
  composed_keys.reserve(composed.size() * 2);
  for (const auto& link : composed) composed_keys.insert(Key(link));

  ReconciledAlignment out;
  std::unordered_set<NodeId> used1, used2;
  auto try_add = [&](const AnchorLink& link) {
    if (used1.count(link.u1) || used2.count(link.u2)) return false;
    used1.insert(link.u1);
    used2.insert(link.u2);
    out.links.push_back(link);
    return true;
  };

  // Pass 1: agreements (deterministic order: sorted by link).
  std::vector<AnchorLink> agreed;
  for (const auto& link : direct) {
    if (composed_keys.count(Key(link))) agreed.push_back(link);
  }
  std::sort(agreed.begin(), agreed.end());
  for (const auto& link : agreed) {
    if (try_add(link)) ++out.agreed;
  }
  // Pass 2: remaining direct links.
  std::vector<AnchorLink> rest_direct(direct);
  std::sort(rest_direct.begin(), rest_direct.end());
  for (const auto& link : rest_direct) {
    if (composed_keys.count(Key(link))) continue;
    if (try_add(link)) ++out.direct_only;
  }
  // Pass 3: remaining composed links.
  std::unordered_set<uint64_t> direct_keys;
  for (const auto& link : direct) direct_keys.insert(Key(link));
  std::vector<AnchorLink> rest_composed(composed);
  std::sort(rest_composed.begin(), rest_composed.end());
  for (const auto& link : rest_composed) {
    if (direct_keys.count(Key(link))) continue;
    if (try_add(link)) ++out.composed_only;
  }
  return out;
}

}  // namespace activeiter
