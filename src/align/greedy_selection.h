// Greedy cardinality-constrained link selection (the WSDM'17 [21]
// ½-approximation the paper adopts for internal step 1-2).
//
// Given continuous scores ŷ over the candidate links, infer binary labels
// y ∈ {0,+1}^{|H|} maximising agreement with the scores subject to the
// one-to-one constraint 0 ≤ A(1)y ≤ 1, 0 ≤ A(2)y ≤ 1: process links in
// decreasing score order and accept a link iff its score strictly exceeds
// the decision threshold and neither endpoint is saturated. The paper's
// generative label is sign(f(x)) ∈ {+1, 0} — positive iff the score is
// strictly positive — so the canonical threshold is 0.
//
// Some links may be *pinned*: labeled positives (L+ and positively queried
// links) are forced to 1 and saturate their endpoints first; negatively
// queried links are forced to 0.

#ifndef ACTIVEITER_ALIGN_GREEDY_SELECTION_H_
#define ACTIVEITER_ALIGN_GREEDY_SELECTION_H_

#include <cstdint>
#include <vector>

#include "src/graph/incidence.h"
#include "src/linalg/vector.h"

namespace activeiter {

/// Pin state of a candidate link during inference.
enum class Pin : int8_t {
  kFree = -1,      // label inferred
  kNegative = 0,   // forced 0 (queried negative)
  kPositive = 1,   // forced 1 (labeled/queried positive)
};

/// Runs the greedy selection. `scores` and `pinned` are indexed by link id;
/// returns the {0,+1} label vector. Deterministic: ties in score are broken
/// by link id.
Vector GreedySelect(const Vector& scores, const IncidenceIndex& index,
                    const std::vector<Pin>& pinned, double threshold);

/// Generalised cardinality constraint (the full model of [21]): each user
/// of network 1 may be incident to at most `capacity_first` positive links
/// and each user of network 2 to at most `capacity_second`. Capacities of
/// (1, 1) recover GreedySelect. Pinned positives consume capacity first.
/// Both capacities must be >= 1 (checked).
Vector GreedySelectWithCapacity(const Vector& scores,
                                const IncidenceIndex& index,
                                const std::vector<Pin>& pinned,
                                double threshold, size_t capacity_first,
                                size_t capacity_second);

}  // namespace activeiter

#endif  // ACTIVEITER_ALIGN_GREEDY_SELECTION_H_
