#include "src/align/oracle.h"

namespace activeiter {

double Oracle::Query(NodeId u1, NodeId u2) {
  ACTIVEITER_CHECK_MSG(used_ < budget_, "oracle budget exhausted");
  ++used_;
  return pair_->IsAnchor(u1, u2) ? 1.0 : 0.0;
}

double Oracle::QueryLink(const CandidateLinkSet& candidates, size_t link_id) {
  const auto& [u1, u2] = candidates.link(link_id);
  return Query(u1, u2);
}

}  // namespace activeiter
