// Hungarian algorithm (Kuhn–Munkres) for exact maximum-weight one-to-one
// matching.
//
// The paper uses the greedy ½-approximation of [21] for internal step 1-2;
// this exact solver exists to quantify the greedy gap in the matching
// ablation bench (`bench/ablation_matching`). O(n³) with potentials,
// rectangular matrices handled by padding.

#ifndef ACTIVEITER_ALIGN_HUNGARIAN_H_
#define ACTIVEITER_ALIGN_HUNGARIAN_H_

#include <cstdint>
#include <vector>

#include "src/align/greedy_selection.h"
#include "src/graph/incidence.h"
#include "src/linalg/matrix.h"
#include "src/linalg/vector.h"

namespace activeiter {

/// Exact maximum-weight assignment on a dense weight matrix. Entries with
/// weight <= 0 are never matched. Returns match_of_row: for each row the
/// assigned column or -1.
std::vector<int64_t> MaxWeightAssignment(const Matrix& weights);

/// Drop-in alternative to GreedySelect: builds the dense score matrix over
/// the users touched by the candidate set and selects the exact
/// maximum-weight one-to-one label vector (scores below `threshold` are
/// excluded; pinned positives are forced, pinned negatives excluded).
Vector HungarianSelect(const Vector& scores, const IncidenceIndex& index,
                       const std::vector<Pin>& pinned, double threshold);

}  // namespace activeiter

#endif  // ACTIVEITER_ALIGN_HUNGARIAN_H_
