#include "src/align/greedy_selection.h"

#include <algorithm>
#include <numeric>

namespace activeiter {

Vector GreedySelect(const Vector& scores, const IncidenceIndex& index,
                    const std::vector<Pin>& pinned, double threshold) {
  return GreedySelectWithCapacity(scores, index, pinned, threshold, 1, 1);
}

Vector GreedySelectWithCapacity(const Vector& scores,
                                const IncidenceIndex& index,
                                const std::vector<Pin>& pinned,
                                double threshold, size_t capacity_first,
                                size_t capacity_second) {
  const size_t n = scores.size();
  ACTIVEITER_CHECK_MSG(pinned.size() == n, "pin vector size mismatch");
  ACTIVEITER_CHECK_MSG(index.candidate_count() == n,
                       "incidence index size mismatch");
  ACTIVEITER_CHECK_MSG(capacity_first >= 1 && capacity_second >= 1,
                       "capacities must be >= 1");
  const CandidateLinkSet& candidates = index.candidates();

  Vector y(n);
  std::vector<size_t> used_first(index.users_first(), 0);
  std::vector<size_t> used_second(index.users_second(), 0);

  // Pass 1: pinned positives consume capacity unconditionally (their
  // labels are ground truth; the caller guarantees they respect the
  // cardinality constraint because true anchors do).
  for (size_t id = 0; id < n; ++id) {
    if (pinned[id] == Pin::kPositive) {
      y(id) = 1.0;
      const auto& [u1, u2] = candidates.link(id);
      ++used_first[u1];
      ++used_second[u2];
    }
  }

  // Pass 2: free links in decreasing score order; accept while above the
  // threshold and capacity remains. Ties broken by link id for
  // determinism.
  std::vector<size_t> order;
  order.reserve(n);
  for (size_t id = 0; id < n; ++id) {
    if (pinned[id] == Pin::kFree && scores(id) > threshold) {
      order.push_back(id);
    }
  }
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores(a) > scores(b);
  });
  for (size_t id : order) {
    const auto& [u1, u2] = candidates.link(id);
    if (used_first[u1] >= capacity_first ||
        used_second[u2] >= capacity_second) {
      continue;
    }
    y(id) = 1.0;
    ++used_first[u1];
    ++used_second[u2];
  }
  return y;
}

}  // namespace activeiter
