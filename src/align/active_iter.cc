#include "src/align/active_iter.h"

namespace activeiter {

std::vector<size_t> ActiveIterResult::QueriedLinkIds() const {
  std::vector<size_t> out;
  out.reserve(queries.size());
  for (const auto& q : queries) out.push_back(q.link_id);
  return out;
}

ActiveIterModel::ActiveIterModel(ActiveIterOptions options)
    : options_(std::move(options)) {}

std::unique_ptr<QueryStrategy> ActiveIterModel::MakeStrategy() const {
  switch (options_.strategy) {
    case QueryStrategyKind::kConflict:
      return std::make_unique<ConflictQueryStrategy>(
          options_.closeness_threshold, options_.dominance_margin,
          options_.fill_with_near_misses);
    case QueryStrategyKind::kRandom:
      return std::make_unique<RandomQueryStrategy>();
    case QueryStrategyKind::kUncertainty:
      return std::make_unique<UncertaintyQueryStrategy>(
          options_.base.threshold);
  }
  return std::make_unique<ConflictQueryStrategy>();
}

Result<ActiveIterResult> ActiveIterModel::Run(const AlignmentProblem& problem,
                                              Oracle* oracle) const {
  // Validation (pointers, sizes, c > 0, oracle presence) lives in Prepare
  // and the session overload; this wrapper only wires them together.
  auto session = problem.Prepare(options_.base.c);
  if (!session.ok()) return session.status();
  return Run(session.value(), oracle);
}

Result<ActiveIterResult> ActiveIterModel::Run(AlignmentSession& session,
                                              Oracle* oracle) const {
  if (oracle == nullptr) {
    return Status::InvalidArgument("ActiveIter requires an oracle");
  }
  if (options_.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be > 0");
  }

  IterAligner aligner(options_.base);
  std::unique_ptr<QueryStrategy> strategy = MakeStrategy();
  Rng rng(options_.seed);

  ActiveIterResult result;

  size_t budget = std::min(options_.budget, oracle->remaining_budget());
  for (;;) {
    // External step (1): internal alternation to convergence against the
    // shared factorisation; only the session's pins changed since last
    // round.
    auto aligned_or = aligner.Align(session);
    if (!aligned_or.ok()) return aligned_or.status();
    AlignmentResult aligned = std::move(aligned_or).value();
    result.round_traces.push_back(aligned.trace);
    ++result.rounds;

    result.y = std::move(aligned.y);
    result.scores = std::move(aligned.scores);
    result.w = std::move(aligned.w);

    size_t remaining = budget - result.queries.size();
    if (remaining == 0) break;

    // External step (2): choose and ask the next batch.
    QueryContext ctx;
    ctx.scores = &result.scores;
    ctx.y = &result.y;
    ctx.index = &session.index();
    ctx.pinned = &session.pinned();
    std::vector<size_t> batch = strategy->SelectQueries(
        ctx, std::min(options_.batch_size, remaining), &rng);
    if (batch.empty()) break;  // no informative candidates left

    for (size_t link_id : batch) {
      ACTIVEITER_CHECK(session.pinned()[link_id] == Pin::kFree);
      double label =
          oracle->QueryLink(session.index().candidates(), link_id);
      session.SetPin(link_id, label > 0.5 ? Pin::kPositive : Pin::kNegative);
      result.queries.push_back({link_id, label});
    }
  }
  return result;
}

}  // namespace activeiter
