// Active-learning query strategies (external iteration step 2 of §III-D).
//
// The paper's conflict strategy targets mis-classified false negatives:
// among links currently labeled 0, pick those that (a) barely lost a
// conflict to some positive link l' (ŷ_l' ~ ŷ_l, closeness threshold 0.05)
// and (b) clearly dominate another conflicting positive link l''
// (ŷ_l ≫ ŷ_l'' > 0). Querying such a link corrects up to three labels at
// once. Candidates are ranked by ŷ_l − ŷ_l'' and the top k are queried per
// round (k = 5 in the paper).

#ifndef ACTIVEITER_ALIGN_QUERY_STRATEGY_H_
#define ACTIVEITER_ALIGN_QUERY_STRATEGY_H_

#include <memory>
#include <vector>

#include "src/align/greedy_selection.h"
#include "src/common/rng.h"
#include "src/graph/incidence.h"
#include "src/linalg/vector.h"

namespace activeiter {

/// Inputs a strategy sees when choosing the next batch.
struct QueryContext {
  const Vector* scores = nullptr;  // current ŷ over H
  const Vector* y = nullptr;       // current inferred labels over H
  const IncidenceIndex* index = nullptr;
  const std::vector<Pin>* pinned = nullptr;  // already-labeled links
};

/// Strategy interface; implementations must be deterministic given the
/// context (randomised strategies draw from the provided rng).
class QueryStrategy {
 public:
  virtual ~QueryStrategy() = default;

  /// Returns up to `k` distinct unpinned link ids to query, best first.
  virtual std::vector<size_t> SelectQueries(const QueryContext& ctx,
                                            size_t k, Rng* rng) = 0;

  /// Display name for reports.
  virtual const char* name() const = 0;
};

/// The paper's conflict-based false-negative strategy.
class ConflictQueryStrategy : public QueryStrategy {
 public:
  /// `closeness` is the |ŷ_l' − ŷ_l| threshold (paper: 0.05); `dominance`
  /// is the minimal ŷ_l − ŷ_l'' margin for the "≫" condition.
  /// When `fill_with_near_misses` is set and fewer than k strict candidates
  /// exist, the batch is topped up with the negative links that lost their
  /// conflict by the smallest margin (the natural relaxation of the strict
  /// set; on small candidate pools the strict set can run dry before the
  /// budget is spent, which the paper's 150k-link pools never hit).
  explicit ConflictQueryStrategy(double closeness = 0.05,
                                 double dominance = 0.05,
                                 bool fill_with_near_misses = true)
      : closeness_(closeness),
        dominance_(dominance),
        fill_with_near_misses_(fill_with_near_misses) {}

  std::vector<size_t> SelectQueries(const QueryContext& ctx, size_t k,
                                    Rng* rng) override;
  const char* name() const override { return "conflict"; }

 private:
  double closeness_;
  double dominance_;
  bool fill_with_near_misses_;
};

/// Uniform-random query baseline (ActiveIter-Rand).
class RandomQueryStrategy : public QueryStrategy {
 public:
  std::vector<size_t> SelectQueries(const QueryContext& ctx, size_t k,
                                    Rng* rng) override;
  const char* name() const override { return "random"; }
};

/// Extension: uncertainty sampling — queries the unpinned links whose
/// scores are closest to the decision threshold. Not in the paper;
/// included for the query-strategy ablation bench.
class UncertaintyQueryStrategy : public QueryStrategy {
 public:
  explicit UncertaintyQueryStrategy(double threshold = 0.5)
      : threshold_(threshold) {}

  std::vector<size_t> SelectQueries(const QueryContext& ctx, size_t k,
                                    Rng* rng) override;
  const char* name() const override { return "uncertainty"; }

 private:
  double threshold_;
};

}  // namespace activeiter

#endif  // ACTIVEITER_ALIGN_QUERY_STRATEGY_H_
