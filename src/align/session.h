// The stateful session layer of the learn→align→eval stack.
//
// The paper's external loop (§III-D) alternates ridge fits and label
// inference over a *fixed* design matrix X: between external ActiveIter
// rounds only the pin state changes. AlignmentSession splits those two
// lifetimes apart:
//
//   problem-invariant — the design matrix view, its factored ridge system
//     (Gram product + per-c Cholesky, built exactly once by Prepare()),
//     and the incidence index view;
//   per-round — the pin state (L+ plus queried labels), cheap to mutate
//     or reset between runs.
//
// A full ActiveIter run (budget 100, batch 5 → 21 rounds) against one
// session performs exactly one Gram/Cholesky factorisation instead of one
// per round, with bitwise-identical results; FoldRunner shares one session
// per (feature set, c) across all PU methods of a fold.

#ifndef ACTIVEITER_ALIGN_SESSION_H_
#define ACTIVEITER_ALIGN_SESSION_H_

#include <memory>
#include <vector>

#include "src/align/greedy_selection.h"
#include "src/common/status.h"
#include "src/graph/incidence.h"
#include "src/learn/ridge.h"

namespace activeiter {

class ThreadPool;

/// Prepared solver state plus mutable pin state for one alignment run (or
/// a sequence of runs over the same X and c). `x` and `index` must outlive
/// the session; both are borrowed, the pin state is owned.
class AlignmentSession {
 public:
  /// Builds the session: one Gram product (pool-parallel when `pool` is
  /// given) and one Cholesky factorisation of I + cXᵀX. Pins start kFree.
  /// The prepared state is exclusively owned, so the session may grow.
  static Result<AlignmentSession> Create(const Matrix& x,
                                         const IncidenceIndex& index,
                                         double c,
                                         ThreadPool* pool = nullptr);

  /// Derives a session from an existing prepared Gram: one Cholesky
  /// factorisation, zero passes over X. Sessions sharing a prepared state
  /// (e.g. a fold's sessions that differ only in c) may not grow — the
  /// Gram is shared.
  static Result<AlignmentSession> CreateFromPrepared(
      std::shared_ptr<RidgePrepared> prepared, const IncidenceIndex& index,
      double c);

  // --- problem-invariant state ---
  const Matrix& x() const { return *x_; }
  const IncidenceIndex& index() const { return *index_; }
  double c() const { return solver_.c(); }
  /// The factored ridge system (shared by every round).
  const RidgeSolver& solver() const { return solver_; }
  /// The factor-once Gram state (derive solvers for other c from it).
  const RidgePrepared& prepared() const { return *prepared_; }
  /// The shareable prepared state (pass to CreateFromPrepared to derive a
  /// sibling session with a different c from the same Gram).
  const std::shared_ptr<RidgePrepared>& shared_prepared() const {
    return prepared_;
  }
  /// |H|: number of candidate links.
  size_t size() const { return x_->rows(); }

  // --- per-round state ---
  const std::vector<Pin>& pinned() const { return pinned_; }
  /// Replaces the whole pin state (|H| entries; checked).
  void ResetPins(std::vector<Pin> pinned);
  /// Pins one link (query answers during the active loop).
  void SetPin(size_t link_id, Pin pin);

  // --- online growth (sessions with an exclusively owned prepared state;
  //     the streaming-ingest path) ---

  /// Absorbs candidate rows [first_new_row, x().rows()) appended to the
  /// (caller-owned) design matrix after the index was synced to match:
  /// folds them into the Gram, rank-1 updates the factor (one O(d²)
  /// update per row — zero refactorisations), appends kFree pins.
  Status AbsorbAppendedRows(size_t first_new_row);

  /// Absorbs an in-place overwrite of design row `row` (the caller passes
  /// the values the row held before the overwrite): replaces its Gram
  /// contribution and applies a rank-1 update/downdate pair. The pin is
  /// untouched — only the features changed, not the label state.
  Status AbsorbReplacedRow(size_t row, const Vector& old_row);

  /// Absorbs the REMOVAL of design rows `sorted_ids` (strictly increasing)
  /// while they are still present in the design matrix: gathers their
  /// values, downdates the Gram, and applies one blocked rank-k downdate
  /// to the factor. When the downdate goes numerically indefinite the
  /// factor falls back to ONE counted refactorisation from the (exactly
  /// maintained) downdated Gram — the only refactor the shrink path can
  /// ever cost. Pins at the removed ids are erased. The caller must
  /// immediately afterwards compact the design matrix (Matrix::RemoveRows)
  /// and the candidate set/index — this call leaves the session expecting
  /// x().rows() to shrink by sorted_ids.size().
  Status AbsorbRemovedRows(const std::vector<size_t>& sorted_ids);

 private:
  AlignmentSession(const Matrix* x, const IncidenceIndex* index,
                   std::shared_ptr<RidgePrepared> prepared,
                   RidgeSolver solver, bool exclusive)
      : x_(x),
        index_(index),
        prepared_(std::move(prepared)),
        solver_(std::move(solver)),
        exclusive_(exclusive),
        pinned_(x->rows(), Pin::kFree) {}

  const Matrix* x_;
  const IncidenceIndex* index_;
  std::shared_ptr<RidgePrepared> prepared_;  // shared across same-Gram peers
  RidgeSolver solver_;
  bool exclusive_;  // true iff prepared_ is this session's alone (may grow)
  std::vector<Pin> pinned_;
};

/// The shared inputs of one alignment run: features X over the candidate
/// set H, its incidence index, and the pin state (labeled positives L+,
/// plus queried labels when running inside ActiveIter).
struct AlignmentProblem {
  const Matrix* x = nullptr;            // |H| × d, bias column included
  const IncidenceIndex* index = nullptr;
  std::vector<Pin> pinned;              // |H| entries

  /// Validates sizes and pointer presence.
  Status Validate() const;

  /// Builds a session for ridge weight `c` seeded with this problem's pin
  /// state. The problem's `x`/`index` must outlive the session.
  Result<AlignmentSession> Prepare(double c,
                                   ThreadPool* pool = nullptr) const;
};

}  // namespace activeiter

#endif  // ACTIVEITER_ALIGN_SESSION_H_
