// IsoRank-style unsupervised alignment (extension baseline).
//
// The paper cites IsoRank [16] as the canonical unsupervised aligner. We
// include a from-scratch implementation as an extension: similarity
// propagation S ← α·B1ᵀ S B2 + (1−α)·P over the (undirected) follow
// graphs, where B are degree-normalised adjacencies and P a degree-
// similarity prior, followed by greedy one-to-one extraction. It needs no
// labels at all, which lets the examples contrast supervised, PU, active
// and unsupervised regimes on the same data.

#ifndef ACTIVEITER_ALIGN_ISORANK_H_
#define ACTIVEITER_ALIGN_ISORANK_H_

#include <vector>

#include "src/common/status.h"
#include "src/graph/aligned_pair.h"
#include "src/linalg/matrix.h"

namespace activeiter {

/// IsoRank options.
struct IsoRankOptions {
  /// Structural-propagation weight α ∈ (0, 1).
  double alpha = 0.85;
  size_t max_iterations = 50;
  /// Stop when max |ΔS| falls below this.
  double tolerance = 1e-7;
};

/// Result: predicted anchors plus the converged similarity matrix.
struct IsoRankResult {
  std::vector<AnchorLink> predicted;
  Matrix similarity;  // |U1| × |U2|
  size_t iterations = 0;
};

/// Runs IsoRank on the follow structure of the pair.
class IsoRankAligner {
 public:
  explicit IsoRankAligner(IsoRankOptions options = {}) : options_(options) {}

  /// Fails on invalid options.
  Result<IsoRankResult> Align(const AlignedPair& pair) const;

 private:
  IsoRankOptions options_;
};

}  // namespace activeiter

#endif  // ACTIVEITER_ALIGN_ISORANK_H_
