#include "src/align/svm_aligner.h"

namespace activeiter {

Result<Vector> SvmAligner::Run(const Dataset& train,
                               const Matrix& test_features) const {
  auto svm = LinearSvm::Train(train, options_);
  if (!svm.ok()) return svm.status();
  return svm.value().Predict(test_features);
}

}  // namespace activeiter
