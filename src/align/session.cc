#include "src/align/session.h"

namespace activeiter {

Result<AlignmentSession> AlignmentSession::Create(const Matrix& x,
                                                 const IncidenceIndex& index,
                                                 double c, ThreadPool* pool) {
  if (index.candidate_count() != x.rows()) {
    return Status::InvalidArgument(
        "incidence index size must match feature rows");
  }
  auto prepared =
      std::make_shared<RidgePrepared>(RidgePrepared::Create(x, pool));
  auto solver = prepared->SolverFor(c);
  if (!solver.ok()) return solver.status();
  return AlignmentSession(&x, &index, std::move(prepared),
                          std::move(solver).value(), /*exclusive=*/true);
}

Result<AlignmentSession> AlignmentSession::CreateFromPrepared(
    std::shared_ptr<RidgePrepared> prepared, const IncidenceIndex& index,
    double c) {
  if (prepared == nullptr) {
    return Status::InvalidArgument("prepared state must be non-null");
  }
  if (index.candidate_count() != prepared->x().rows()) {
    return Status::InvalidArgument(
        "incidence index size must match feature rows");
  }
  auto solver = prepared->SolverFor(c);
  if (!solver.ok()) return solver.status();
  const Matrix* x = &prepared->x();
  return AlignmentSession(x, &index, std::move(prepared),
                          std::move(solver).value(), /*exclusive=*/false);
}

Status AlignmentSession::AbsorbAppendedRows(size_t first_new_row) {
  if (!exclusive_) {
    return Status::FailedPrecondition(
        "cannot grow a session whose prepared state is shared");
  }
  if (first_new_row > x_->rows() || first_new_row != pinned_.size()) {
    return Status::InvalidArgument(
        "appended-row range does not extend the session");
  }
  if (index_->candidate_count() != x_->rows()) {
    return Status::FailedPrecondition(
        "sync the incidence index before absorbing appended rows");
  }
  const size_t count = x_->rows() - first_new_row;
  Matrix new_rows(count, x_->cols());
  for (size_t r = 0; r < count; ++r) {
    const double* src = x_->row_data(first_new_row + r);
    for (size_t j = 0; j < x_->cols(); ++j) new_rows(r, j) = src[j];
  }
  prepared_->UpdateGram(new_rows);
  ACTIVEITER_RETURN_IF_ERROR(solver_.AbsorbAppendedRows(new_rows));
  pinned_.resize(x_->rows(), Pin::kFree);
  return Status::OK();
}

Status AlignmentSession::AbsorbRemovedRows(
    const std::vector<size_t>& sorted_ids) {
  if (!exclusive_) {
    return Status::FailedPrecondition(
        "cannot shrink a session whose prepared state is shared");
  }
  if (sorted_ids.empty()) return Status::OK();
  for (size_t i = 0; i < sorted_ids.size(); ++i) {
    if (sorted_ids[i] >= x_->rows() ||
        (i > 0 && sorted_ids[i] <= sorted_ids[i - 1])) {
      return Status::InvalidArgument(
          "removed row ids must be strictly increasing and in range");
    }
  }
  if (pinned_.size() != x_->rows()) {
    return Status::FailedPrecondition(
        "session pin state out of sync with the design matrix");
  }
  const size_t d = x_->cols();
  Matrix removed(sorted_ids.size(), d);
  for (size_t r = 0; r < sorted_ids.size(); ++r) {
    const double* src = x_->row_data(sorted_ids[r]);
    for (size_t j = 0; j < d; ++j) removed(r, j) = src[j];
  }
  // The Gram downdate is exact bookkeeping (G −= RᵀR) and cannot fail;
  // doing it first means the refactorisation fallback below factors the
  // correct post-removal system I + c·G', which is SPD by construction.
  prepared_->DowndateGram(removed);
  Status downdated = solver_.AbsorbRemovedRows(removed);
  if (!downdated.ok()) {
    // Indefinite breakdown: one counted refactor from the downdated Gram.
    auto refactored = prepared_->SolverFor(solver_.c());
    if (!refactored.ok()) return refactored.status();
    solver_ = std::move(refactored).value();
  }
  // Erase pins at the removed ids, compacting survivors in order.
  size_t next_removed = 0;
  size_t write = 0;
  for (size_t i = 0; i < pinned_.size(); ++i) {
    if (next_removed < sorted_ids.size() && sorted_ids[next_removed] == i) {
      ++next_removed;
      continue;
    }
    pinned_[write++] = pinned_[i];
  }
  pinned_.resize(write);
  return Status::OK();
}

Status AlignmentSession::AbsorbReplacedRow(size_t row,
                                           const Vector& old_row) {
  if (!exclusive_) {
    return Status::FailedPrecondition(
        "cannot mutate a session whose prepared state is shared");
  }
  if (row >= x_->rows()) {
    return Status::InvalidArgument("replaced row out of range");
  }
  Vector new_row = x_->Row(row);
  prepared_->UpdateGramForReplacedRow(old_row, new_row);
  return solver_.AbsorbReplacedRow(old_row, new_row);
}

void AlignmentSession::ResetPins(std::vector<Pin> pinned) {
  ACTIVEITER_CHECK_MSG(pinned.size() == size(),
                       "pin vector size must match candidate count");
  pinned_ = std::move(pinned);
}

void AlignmentSession::SetPin(size_t link_id, Pin pin) {
  ACTIVEITER_CHECK(link_id < pinned_.size());
  pinned_[link_id] = pin;
}

Status AlignmentProblem::Validate() const {
  if (x == nullptr || index == nullptr) {
    return Status::InvalidArgument("AlignmentProblem pointers must be set");
  }
  if (pinned.size() != x->rows()) {
    return Status::InvalidArgument("pin vector size must match feature rows");
  }
  if (index->candidate_count() != x->rows()) {
    return Status::InvalidArgument(
        "incidence index size must match feature rows");
  }
  return Status::OK();
}

Result<AlignmentSession> AlignmentProblem::Prepare(double c,
                                                   ThreadPool* pool) const {
  ACTIVEITER_RETURN_IF_ERROR(Validate());
  auto session = AlignmentSession::Create(*x, *index, c, pool);
  if (!session.ok()) return session.status();
  session.value().ResetPins(pinned);
  return session;
}

}  // namespace activeiter
