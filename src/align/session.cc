#include "src/align/session.h"

namespace activeiter {

Result<AlignmentSession> AlignmentSession::Create(const Matrix& x,
                                                 const IncidenceIndex& index,
                                                 double c, ThreadPool* pool) {
  if (index.candidate_count() != x.rows()) {
    return Status::InvalidArgument(
        "incidence index size must match feature rows");
  }
  RidgePrepared prepared = RidgePrepared::Create(x, pool);
  auto solver = prepared.SolverFor(c);
  if (!solver.ok()) return solver.status();
  return AlignmentSession(&x, &index, std::move(prepared),
                          std::move(solver).value());
}

void AlignmentSession::ResetPins(std::vector<Pin> pinned) {
  ACTIVEITER_CHECK_MSG(pinned.size() == size(),
                       "pin vector size must match candidate count");
  pinned_ = std::move(pinned);
}

void AlignmentSession::SetPin(size_t link_id, Pin pin) {
  ACTIVEITER_CHECK(link_id < pinned_.size());
  pinned_[link_id] = pin;
}

Status AlignmentProblem::Validate() const {
  if (x == nullptr || index == nullptr) {
    return Status::InvalidArgument("AlignmentProblem pointers must be set");
  }
  if (pinned.size() != x->rows()) {
    return Status::InvalidArgument("pin vector size must match feature rows");
  }
  if (index->candidate_count() != x->rows()) {
    return Status::InvalidArgument(
        "incidence index size must match feature rows");
  }
  return Status::OK();
}

Result<AlignmentSession> AlignmentProblem::Prepare(double c,
                                                   ThreadPool* pool) const {
  ACTIVEITER_RETURN_IF_ERROR(Validate());
  auto session = AlignmentSession::Create(*x, *index, c, pool);
  if (!session.ok()) return session.status();
  session.value().ResetPins(pinned);
  return session;
}

}  // namespace activeiter
