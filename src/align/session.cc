#include "src/align/session.h"

namespace activeiter {

Result<AlignmentSession> AlignmentSession::Create(const Matrix& x,
                                                 const IncidenceIndex& index,
                                                 double c, ThreadPool* pool) {
  if (index.candidate_count() != x.rows()) {
    return Status::InvalidArgument(
        "incidence index size must match feature rows");
  }
  auto prepared =
      std::make_shared<RidgePrepared>(RidgePrepared::Create(x, pool));
  auto solver = prepared->SolverFor(c);
  if (!solver.ok()) return solver.status();
  return AlignmentSession(&x, &index, std::move(prepared),
                          std::move(solver).value(), /*exclusive=*/true);
}

Result<AlignmentSession> AlignmentSession::CreateFromPrepared(
    std::shared_ptr<RidgePrepared> prepared, const IncidenceIndex& index,
    double c) {
  if (prepared == nullptr) {
    return Status::InvalidArgument("prepared state must be non-null");
  }
  if (index.candidate_count() != prepared->x().rows()) {
    return Status::InvalidArgument(
        "incidence index size must match feature rows");
  }
  auto solver = prepared->SolverFor(c);
  if (!solver.ok()) return solver.status();
  const Matrix* x = &prepared->x();
  return AlignmentSession(x, &index, std::move(prepared),
                          std::move(solver).value(), /*exclusive=*/false);
}

Status AlignmentSession::AbsorbAppendedRows(size_t first_new_row) {
  if (!exclusive_) {
    return Status::FailedPrecondition(
        "cannot grow a session whose prepared state is shared");
  }
  if (first_new_row > x_->rows() || first_new_row != pinned_.size()) {
    return Status::InvalidArgument(
        "appended-row range does not extend the session");
  }
  if (index_->candidate_count() != x_->rows()) {
    return Status::FailedPrecondition(
        "sync the incidence index before absorbing appended rows");
  }
  const size_t count = x_->rows() - first_new_row;
  Matrix new_rows(count, x_->cols());
  for (size_t r = 0; r < count; ++r) {
    const double* src = x_->row_data(first_new_row + r);
    for (size_t j = 0; j < x_->cols(); ++j) new_rows(r, j) = src[j];
  }
  prepared_->UpdateGram(new_rows);
  ACTIVEITER_RETURN_IF_ERROR(solver_.AbsorbAppendedRows(new_rows));
  pinned_.resize(x_->rows(), Pin::kFree);
  return Status::OK();
}

Status AlignmentSession::AbsorbReplacedRow(size_t row,
                                           const Vector& old_row) {
  if (!exclusive_) {
    return Status::FailedPrecondition(
        "cannot mutate a session whose prepared state is shared");
  }
  if (row >= x_->rows()) {
    return Status::InvalidArgument("replaced row out of range");
  }
  Vector new_row = x_->Row(row);
  prepared_->UpdateGramForReplacedRow(old_row, new_row);
  return solver_.AbsorbReplacedRow(old_row, new_row);
}

void AlignmentSession::ResetPins(std::vector<Pin> pinned) {
  ACTIVEITER_CHECK_MSG(pinned.size() == size(),
                       "pin vector size must match candidate count");
  pinned_ = std::move(pinned);
}

void AlignmentSession::SetPin(size_t link_id, Pin pin) {
  ACTIVEITER_CHECK(link_id < pinned_.size());
  pinned_[link_id] = pin;
}

Status AlignmentProblem::Validate() const {
  if (x == nullptr || index == nullptr) {
    return Status::InvalidArgument("AlignmentProblem pointers must be set");
  }
  if (pinned.size() != x->rows()) {
    return Status::InvalidArgument("pin vector size must match feature rows");
  }
  if (index->candidate_count() != x->rows()) {
    return Status::InvalidArgument(
        "incidence index size must match feature rows");
  }
  return Status::OK();
}

Result<AlignmentSession> AlignmentProblem::Prepare(double c,
                                                   ThreadPool* pool) const {
  ACTIVEITER_RETURN_IF_ERROR(Validate());
  auto session = AlignmentSession::Create(*x, *index, c, pool);
  if (!session.ok()) return session.status();
  session.value().ResetPins(pinned);
  return session;
}

}  // namespace activeiter
