#include "src/align/query_strategy.h"

#include <algorithm>
#include <cmath>

namespace activeiter {
namespace {

void ValidateContext(const QueryContext& ctx) {
  ACTIVEITER_CHECK(ctx.scores != nullptr && ctx.y != nullptr &&
                   ctx.index != nullptr && ctx.pinned != nullptr);
  size_t n = ctx.scores->size();
  ACTIVEITER_CHECK(ctx.y->size() == n && ctx.pinned->size() == n &&
                   ctx.index->candidate_count() == n);
}

}  // namespace

std::vector<size_t> ConflictQueryStrategy::SelectQueries(
    const QueryContext& ctx, size_t k, Rng* /*rng*/) {
  ValidateContext(ctx);
  const Vector& scores = *ctx.scores;
  const Vector& y = *ctx.y;
  const std::vector<Pin>& pinned = *ctx.pinned;
  const size_t n = scores.size();

  // Candidate set C: links in U− (inferred negative, unpinned) that
  // conflict with a near-tied positive l' and a dominated positive l''.
  struct Candidate {
    size_t link;
    double gap;  // ŷ_l − ŷ_l'' (sort key, larger first)
  };
  std::vector<Candidate> candidates;
  struct NearMiss {
    size_t link;
    double distance;  // min |ŷ_l' − ŷ_l| over conflicting positives
  };
  std::vector<NearMiss> near_misses;
  for (size_t l = 0; l < n; ++l) {
    if (pinned[l] != Pin::kFree || y(l) > 0.5) continue;  // need l ∈ U−
    double score_l = scores(l);
    bool has_close_winner = false;
    double best_gap = -1.0;
    double min_distance = -1.0;
    for (size_t other : ctx.index->ConflictingLinks(l)) {
      if (pinned[other] != Pin::kFree || y(other) < 0.5) continue;  // U+
      double score_o = scores(other);
      double distance = std::abs(score_o - score_l);
      if (min_distance < 0.0 || distance < min_distance) {
        min_distance = distance;
      }
      if (distance <= closeness_) {
        has_close_winner = true;  // candidate for l'
      }
      if (score_o > 0.0 && score_l - score_o >= dominance_) {
        best_gap = std::max(best_gap, score_l - score_o);  // candidate l''
      }
    }
    // NOTE: l' and l'' are necessarily distinct when both conditions hold
    // with closeness_ < dominance-implied separation; when the same
    // positive satisfies both, querying l is still informative, so we do
    // not force distinctness.
    if (has_close_winner && best_gap >= 0.0) {
      candidates.push_back({l, best_gap});
    } else if (min_distance >= 0.0) {
      near_misses.push_back({l, min_distance});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.gap > b.gap;
                   });
  std::vector<size_t> out;
  for (size_t i = 0; i < candidates.size() && out.size() < k; ++i) {
    out.push_back(candidates[i].link);
  }
  if (fill_with_near_misses_ && out.size() < k) {
    std::stable_sort(near_misses.begin(), near_misses.end(),
                     [](const NearMiss& a, const NearMiss& b) {
                       return a.distance < b.distance;
                     });
    for (size_t i = 0; i < near_misses.size() && out.size() < k; ++i) {
      out.push_back(near_misses[i].link);
    }
  }
  return out;
}

std::vector<size_t> RandomQueryStrategy::SelectQueries(const QueryContext& ctx,
                                                       size_t k, Rng* rng) {
  ValidateContext(ctx);
  ACTIVEITER_CHECK(rng != nullptr);
  std::vector<size_t> unpinned;
  for (size_t l = 0; l < ctx.pinned->size(); ++l) {
    if ((*ctx.pinned)[l] == Pin::kFree) unpinned.push_back(l);
  }
  if (unpinned.size() <= k) return unpinned;
  std::vector<size_t> picks = rng->SampleWithoutReplacement(unpinned.size(), k);
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t p : picks) out.push_back(unpinned[p]);
  return out;
}

std::vector<size_t> UncertaintyQueryStrategy::SelectQueries(
    const QueryContext& ctx, size_t k, Rng* /*rng*/) {
  ValidateContext(ctx);
  struct Candidate {
    size_t link;
    double distance;
  };
  std::vector<Candidate> candidates;
  for (size_t l = 0; l < ctx.pinned->size(); ++l) {
    if ((*ctx.pinned)[l] != Pin::kFree) continue;
    candidates.push_back({l, std::abs((*ctx.scores)(l) - threshold_)});
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.distance < b.distance;
                   });
  std::vector<size_t> out;
  for (size_t i = 0; i < candidates.size() && out.size() < k; ++i) {
    out.push_back(candidates[i].link);
  }
  return out;
}

}  // namespace activeiter
