// The label oracle of the active-learning loop.
//
// In the paper a human answers label queries; here the planted ground truth
// of the synthetic aligned pair answers them. The oracle also enforces the
// query budget b: exceeding it is a programming error of the caller.

#ifndef ACTIVEITER_ALIGN_ORACLE_H_
#define ACTIVEITER_ALIGN_ORACLE_H_

#include <cstddef>

#include "src/graph/aligned_pair.h"
#include "src/graph/incidence.h"

namespace activeiter {

/// Ground-truth-backed oracle with a query budget.
class Oracle {
 public:
  /// `pair` must outlive the oracle; `budget` is the paper's b.
  Oracle(const AlignedPair& pair, size_t budget)
      : pair_(&pair), budget_(budget) {}

  /// True {0,+1} label of a user pair. Consumes one unit of budget;
  /// CHECK-fails when the budget is exhausted (callers must ask
  /// remaining_budget() first).
  double Query(NodeId u1, NodeId u2);

  /// Convenience: query by candidate link id.
  double QueryLink(const CandidateLinkSet& candidates, size_t link_id);

  size_t budget() const { return budget_; }
  size_t queries_used() const { return used_; }
  size_t remaining_budget() const { return budget_ - used_; }

 private:
  const AlignedPair* pair_;
  size_t budget_;
  size_t used_ = 0;
};

}  // namespace activeiter

#endif  // ACTIVEITER_ALIGN_ORACLE_H_
