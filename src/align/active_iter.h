// ActiveIter: the paper's full active network-alignment model (§III).
//
// External loop (hierarchical alternating updates):
//   step (1): run the internal alternation (IterAligner) to convergence,
//   step (2): pick the next query batch with the query strategy, ask the
//             oracle, pin the answers,
// until the query budget b is exhausted (b/k rounds of batch size k), then
// run one final internal alternation.
//
// The design matrix X never changes between rounds, so the whole loop runs
// against one AlignmentSession: the ridge system is factored exactly once
// per run (not once per round) and only the session's pins move.

#ifndef ACTIVEITER_ALIGN_ACTIVE_ITER_H_
#define ACTIVEITER_ALIGN_ACTIVE_ITER_H_

#include <memory>
#include <vector>

#include "src/align/iter_aligner.h"
#include "src/align/oracle.h"
#include "src/align/query_strategy.h"
#include "src/common/rng.h"

namespace activeiter {

/// Which query strategy ActiveIter uses.
enum class QueryStrategyKind {
  kConflict,     // the paper's strategy (ActiveIter)
  kRandom,       // ActiveIter-Rand baseline
  kUncertainty,  // extension (ablation)
};

/// ActiveIter options.
struct ActiveIterOptions {
  IterAlignerOptions base;
  /// Query budget b (total labels the oracle will answer).
  size_t budget = 50;
  /// Query batch size k per round (paper: 5).
  size_t batch_size = 5;
  /// Conflict-strategy closeness threshold (paper: 0.05).
  double closeness_threshold = 0.05;
  /// Conflict-strategy dominance margin for "ŷ_l ≫ ŷ_l''".
  double dominance_margin = 0.05;
  /// Top up short conflict batches with near-miss losers (see
  /// ConflictQueryStrategy).
  bool fill_with_near_misses = true;
  QueryStrategyKind strategy = QueryStrategyKind::kConflict;
  /// Seed for randomised strategies.
  uint64_t seed = 17;
};

/// One answered query.
struct QueryRecord {
  size_t link_id = 0;
  double label = 0.0;
};

/// Full ActiveIter output.
struct ActiveIterResult {
  Vector y;       // final labels over H
  Vector scores;  // final ŷ
  Vector w;       // final model
  std::vector<QueryRecord> queries;          // in query order
  std::vector<IterationTrace> round_traces;  // one per external round
  size_t rounds = 0;

  /// Link ids that were queried (for exclusion from evaluation).
  std::vector<size_t> QueriedLinkIds() const;
};

/// The ActiveIter model.
class ActiveIterModel {
 public:
  explicit ActiveIterModel(ActiveIterOptions options = {});

  /// Runs the external loop. `problem.pinned` supplies the initial labeled
  /// set L+ (and any pre-queried labels); `oracle` answers queries and is
  /// consulted at most options.budget times. Prepares an internal session
  /// (one factorisation for the entire run).
  Result<ActiveIterResult> Run(const AlignmentProblem& problem,
                               Oracle* oracle) const;

  /// Same, against a caller-owned prepared session whose pins already hold
  /// L+ (and any pre-queried labels). No factorisation happens here; query
  /// answers are pinned into the session as the loop progresses, so the
  /// caller sees the final pin state afterwards. session.c() must equal
  /// options().base.c.
  Result<ActiveIterResult> Run(AlignmentSession& session,
                               Oracle* oracle) const;

  const ActiveIterOptions& options() const { return options_; }

 private:
  std::unique_ptr<QueryStrategy> MakeStrategy() const;

  ActiveIterOptions options_;
};

}  // namespace activeiter

#endif  // ACTIVEITER_ALIGN_ACTIVE_ITER_H_
