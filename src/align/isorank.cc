#include "src/align/isorank.h"

#include <algorithm>
#include <cmath>

#include "src/linalg/sparse_ops.h"

namespace activeiter {
namespace {

/// Undirected, degree-normalised neighbour matrix: B(u, i) = 1/deg(u) if
/// u ~ i (follow in either direction).
SparseMatrix NormalizedNeighbors(const HeteroNetwork& net) {
  SparseMatrix a = net.AdjacencyMatrix(RelationType::kFollow);
  SparseMatrix sym = Binarize(Add(a, Transpose(a)));
  Vector deg = sym.RowSums();
  std::vector<Triplet> trips;
  trips.reserve(sym.nnz());
  sym.ForEach([&](size_t u, size_t i, double) {
    trips.push_back({static_cast<uint32_t>(u), static_cast<uint32_t>(i),
                     1.0 / deg(u)});
  });
  return SparseMatrix::FromTriplets(sym.rows(), sym.cols(), std::move(trips));
}

/// Dense result of B1ᵀ · S · B2 with sparse B's.
Matrix PropagateSimilarity(const SparseMatrix& b1, const Matrix& s,
                           const SparseMatrix& b2) {
  // T = B1ᵀ S  (n1 × n2 dense): T(i, :) += B1(u, i) * S(u, :).
  Matrix t(s.rows(), s.cols());
  b1.ForEach([&](size_t u, size_t i, double w) {
    const double* src = s.row_data(u);
    double* dst = t.row_data(i);
    for (size_t j = 0; j < s.cols(); ++j) dst[j] += w * src[j];
  });
  // R = T B2  (n1 × n2 dense): R(:, j) += B2(v, j) * T(:, v).
  Matrix r(s.rows(), s.cols());
  b2.ForEach([&](size_t v, size_t j, double w) {
    for (size_t i = 0; i < s.rows(); ++i) r(i, j) += w * t(i, v);
  });
  return r;
}

}  // namespace

Result<IsoRankResult> IsoRankAligner::Align(const AlignedPair& pair) const {
  if (options_.alpha <= 0.0 || options_.alpha >= 1.0) {
    return Status::InvalidArgument("IsoRank alpha must be in (0, 1)");
  }
  if (options_.max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be > 0");
  }

  const size_t n1 = pair.first().NodeCount(NodeType::kUser);
  const size_t n2 = pair.second().NodeCount(NodeType::kUser);
  if (n1 == 0 || n2 == 0) {
    return Status::FailedPrecondition("both networks need users");
  }

  SparseMatrix b1 = NormalizedNeighbors(pair.first());
  SparseMatrix b2 = NormalizedNeighbors(pair.second());

  // Degree-similarity prior, normalised to sum 1.
  SparseMatrix adj1 = pair.first().AdjacencyMatrix(RelationType::kFollow);
  SparseMatrix adj2 = pair.second().AdjacencyMatrix(RelationType::kFollow);
  Vector deg1 = Binarize(Add(adj1, Transpose(adj1))).RowSums();
  Vector deg2 = Binarize(Add(adj2, Transpose(adj2))).RowSums();
  Matrix prior(n1, n2);
  double prior_sum = 0.0;
  for (size_t i = 0; i < n1; ++i) {
    for (size_t j = 0; j < n2; ++j) {
      double d = 1.0 / (1.0 + std::abs(deg1(i) - deg2(j)));
      prior(i, j) = d;
      prior_sum += d;
    }
  }
  prior = prior * (1.0 / prior_sum);

  IsoRankResult result;
  Matrix s = prior;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    Matrix propagated = PropagateSimilarity(b1, s, b2);
    Matrix next = propagated * options_.alpha + prior * (1.0 - options_.alpha);
    // Normalise to unit sum to keep the fixed point scale-stable.
    double sum = 0.0;
    for (size_t i = 0; i < n1; ++i) {
      for (size_t j = 0; j < n2; ++j) sum += next(i, j);
    }
    if (sum > 0.0) next = next * (1.0 / sum);
    double delta = Matrix::MaxAbsDiff(next, s);
    s = std::move(next);
    result.iterations = iter + 1;
    if (delta < options_.tolerance) break;
  }

  // Greedy one-to-one extraction by descending similarity.
  struct Cell {
    double sim;
    uint32_t i, j;
  };
  std::vector<Cell> cells;
  cells.reserve(n1 * n2);
  for (size_t i = 0; i < n1; ++i) {
    for (size_t j = 0; j < n2; ++j) {
      cells.push_back({s(i, j), static_cast<uint32_t>(i),
                       static_cast<uint32_t>(j)});
    }
  }
  std::stable_sort(cells.begin(), cells.end(),
                   [](const Cell& a, const Cell& b) { return a.sim > b.sim; });
  std::vector<bool> used1(n1, false), used2(n2, false);
  size_t want = std::min(n1, n2);
  for (const Cell& c : cells) {
    if (result.predicted.size() >= want) break;
    if (used1[c.i] || used2[c.j]) continue;
    used1[c.i] = true;
    used2[c.j] = true;
    result.predicted.push_back({c.i, c.j});
  }
  result.similarity = std::move(s);
  return result;
}

}  // namespace activeiter
