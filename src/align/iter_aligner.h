// The PU iterative alignment core (external iteration step 1 of §III-D):
// alternate
//   (1-1) w = c (I + cXᵀX)⁻¹ Xᵀ y          (ridge, labels fixed)
//   (1-2) y = GreedySelect(Xw)             (labels, model fixed)
// until the label vector stops changing. Running this once with no query
// budget is exactly the Iter-MPMD baseline; ActiveIter wraps it with the
// active query loop.
//
// The alternation runs against an AlignmentSession (see session.h), so the
// ridge system is factored once per session rather than once per call; the
// problem-level Align() overload prepares a throwaway session internally.

#ifndef ACTIVEITER_ALIGN_ITER_ALIGNER_H_
#define ACTIVEITER_ALIGN_ITER_ALIGNER_H_

#include <vector>

#include "src/align/greedy_selection.h"
#include "src/align/session.h"
#include "src/common/status.h"
#include "src/graph/incidence.h"
#include "src/learn/ridge.h"

namespace activeiter {

/// How internal step 1-2 solves the constrained label inference.
enum class SelectionAlgorithm {
  kGreedy,     // the paper's ½-approximation from WSDM'17 [21]
  kHungarian,  // exact max-weight matching (ablation)
};

/// Options of the internal alternation.
struct IterAlignerOptions {
  /// Ridge loss weight c (> 0).
  double c = 1.0;
  /// Score threshold a free link must strictly exceed to be selected
  /// positive. 0 matches the paper's sign(f(x)) ∈ {+1, 0} semantics.
  double threshold = 0.0;
  /// Cap on the internal alternation (the paper observes convergence in
  /// < 5 iterations; the cap only guards pathological inputs).
  size_t max_iterations = 50;
  /// Label-inference algorithm (greedy is the paper's choice).
  SelectionAlgorithm selection = SelectionAlgorithm::kGreedy;
};

/// Per-iteration Δy = ‖yᵢ − yᵢ₋₁‖₁ trace (the series of Figure 3).
struct IterationTrace {
  std::vector<double> delta_y;
  bool converged = false;
  size_t iterations() const { return delta_y.size(); }
};

/// Result of one alternation run.
struct AlignmentResult {
  Vector y;       // inferred {0,+1} labels over H
  Vector scores;  // final ŷ = Xw
  Vector w;       // final model weights
  IterationTrace trace;
};

/// Runs the alternating optimisation (Iter-MPMD when pinned holds only L+).
class IterAligner {
 public:
  explicit IterAligner(IterAlignerOptions options = {})
      : options_(options) {}

  /// Solves the problem with a session prepared on the spot (one
  /// factorisation per call, the pre-session behaviour). Fails on invalid
  /// inputs or a singular ridge system (impossible for c > 0 but surfaced
  /// rather than swallowed).
  Result<AlignmentResult> Align(const AlignmentProblem& problem) const;

  /// Runs the alternation against a prepared session (no factorisation;
  /// the session's pins seed the labels). session.c() must equal
  /// options().c.
  Result<AlignmentResult> Align(const AlignmentSession& session) const;

  const IterAlignerOptions& options() const { return options_; }

 private:
  IterAlignerOptions options_;
};

}  // namespace activeiter

#endif  // ACTIVEITER_ALIGN_ITER_ALIGNER_H_
