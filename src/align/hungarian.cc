#include "src/align/hungarian.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace activeiter {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Classic O(n²m) Hungarian with potentials on a min-cost matrix
/// (rows <= cols required). Returns, for each row, the assigned column.
std::vector<int64_t> MinCostAssignment(const Matrix& cost) {
  const size_t n = cost.rows();
  const size_t m = cost.cols();
  ACTIVEITER_CHECK_MSG(n <= m, "Hungarian requires rows <= cols");

  std::vector<double> u(n + 1, 0.0), v(m + 1, 0.0);
  std::vector<size_t> p(m + 1, 0), way(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<bool> used(m + 1, false);
    do {
      used[j0] = true;
      size_t i0 = p[j0], j1 = 0;
      double delta = kInf;
      for (size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        double cur = cost(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  std::vector<int64_t> match_of_row(n, -1);
  for (size_t j = 1; j <= m; ++j) {
    if (p[j] != 0) match_of_row[p[j] - 1] = static_cast<int64_t>(j - 1);
  }
  return match_of_row;
}

}  // namespace

std::vector<int64_t> MaxWeightAssignment(const Matrix& weights) {
  const size_t n = weights.rows();
  const size_t m = weights.cols();
  if (n == 0 || m == 0) return std::vector<int64_t>(n, -1);

  double max_w = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) max_w = std::max(max_w, weights(i, j));
  }
  // Min-cost matrix with n dummy "stay unmatched" columns of weight 0.
  Matrix cost(n, m + n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < m; ++j) {
      cost(i, j) = max_w - std::max(weights(i, j), 0.0);
    }
    for (size_t j = m; j < m + n; ++j) cost(i, j) = max_w;
  }
  std::vector<int64_t> raw = MinCostAssignment(cost);
  for (size_t i = 0; i < n; ++i) {
    if (raw[i] >= static_cast<int64_t>(m) ||
        (raw[i] >= 0 && weights(i, static_cast<size_t>(raw[i])) <= 0.0)) {
      raw[i] = -1;  // dummy column or non-positive weight: unmatched
    }
  }
  return raw;
}

Vector HungarianSelect(const Vector& scores, const IncidenceIndex& index,
                       const std::vector<Pin>& pinned, double threshold) {
  const size_t n = scores.size();
  ACTIVEITER_CHECK(pinned.size() == n && index.candidate_count() == n);
  const CandidateLinkSet& candidates = index.candidates();

  Vector y(n);
  std::vector<bool> saturated_first(index.users_first(), false);
  std::vector<bool> saturated_second(index.users_second(), false);
  for (size_t id = 0; id < n; ++id) {
    if (pinned[id] == Pin::kPositive) {
      y(id) = 1.0;
      const auto& [u1, u2] = candidates.link(id);
      saturated_first[u1] = true;
      saturated_second[u2] = true;
    }
  }

  // Collect eligible links and compact the touched user ids.
  std::unordered_map<NodeId, size_t> row_of, col_of;
  std::vector<NodeId> rows, cols;
  std::vector<size_t> eligible;
  for (size_t id = 0; id < n; ++id) {
    if (pinned[id] != Pin::kFree || scores(id) <= threshold) continue;
    const auto& [u1, u2] = candidates.link(id);
    if (saturated_first[u1] || saturated_second[u2]) continue;
    eligible.push_back(id);
    if (!row_of.count(u1)) {
      row_of[u1] = rows.size();
      rows.push_back(u1);
    }
    if (!col_of.count(u2)) {
      col_of[u2] = cols.size();
      cols.push_back(u2);
    }
  }
  if (eligible.empty()) return y;

  // The Hungarian kernel requires rows <= cols; transpose if needed.
  bool transposed = rows.size() > cols.size();
  size_t nr = transposed ? cols.size() : rows.size();
  size_t nc = transposed ? rows.size() : cols.size();
  Matrix weights(nr, nc);
  // Keep the best-scoring link id per user pair.
  std::unordered_map<uint64_t, size_t> link_of_cell;
  for (size_t id : eligible) {
    const auto& [u1, u2] = candidates.link(id);
    size_t r = transposed ? col_of[u2] : row_of[u1];
    size_t c = transposed ? row_of[u1] : col_of[u2];
    if (scores(id) > weights(r, c)) {
      weights(r, c) = scores(id);
      link_of_cell[(static_cast<uint64_t>(r) << 32) | c] = id;
    }
  }

  std::vector<int64_t> match = MaxWeightAssignment(weights);
  for (size_t r = 0; r < match.size(); ++r) {
    if (match[r] < 0) continue;
    auto it = link_of_cell.find((static_cast<uint64_t>(r) << 32) |
                                static_cast<uint64_t>(match[r]));
    ACTIVEITER_CHECK(it != link_of_cell.end());
    y(it->second) = 1.0;
  }
  return y;
}

}  // namespace activeiter
