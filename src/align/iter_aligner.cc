#include "src/align/iter_aligner.h"

#include "src/align/hungarian.h"

namespace activeiter {

Result<AlignmentResult> IterAligner::Align(
    const AlignmentProblem& problem) const {
  if (options_.c <= 0.0) {
    return Status::InvalidArgument("IterAlignerOptions.c must be > 0");
  }
  auto session = problem.Prepare(options_.c);
  if (!session.ok()) return session.status();
  return Align(session.value());
}

Result<AlignmentResult> IterAligner::Align(
    const AlignmentSession& session) const {
  if (options_.c <= 0.0) {
    return Status::InvalidArgument("IterAlignerOptions.c must be > 0");
  }
  if (session.c() != options_.c) {
    return Status::InvalidArgument(
        "session was prepared for a different ridge weight c");
  }
  const RidgeSolver& solver = session.solver();
  const std::vector<Pin>& pinned = session.pinned();
  const size_t n = session.size();

  // Initial labels: pinned values, free links 0.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    y(i) = pinned[i] == Pin::kPositive ? 1.0 : 0.0;
  }

  AlignmentResult result;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // (1-1) fit w against the current labels.
    Vector w = solver.Solve(y);
    // (1-2) infer labels under the cardinality constraint.
    Vector scores = solver.Predict(w);
    Vector y_next =
        options_.selection == SelectionAlgorithm::kGreedy
            ? GreedySelect(scores, session.index(), pinned,
                           options_.threshold)
            : HungarianSelect(scores, session.index(), pinned,
                              options_.threshold);
    // Queried negatives stay 0 and pinned positives stay 1 by construction
    // of GreedySelect; measure label movement.
    double delta = (y_next - y).Norm1();
    result.trace.delta_y.push_back(delta);
    y = std::move(y_next);
    result.w = std::move(w);
    result.scores = std::move(scores);
    if (delta == 0.0) {
      result.trace.converged = true;
      break;
    }
  }
  result.y = std::move(y);
  return result;
}

}  // namespace activeiter
