#include "src/align/iter_aligner.h"

#include "src/align/hungarian.h"

namespace activeiter {

Status AlignmentProblem::Validate() const {
  if (x == nullptr || index == nullptr) {
    return Status::InvalidArgument("AlignmentProblem pointers must be set");
  }
  if (pinned.size() != x->rows()) {
    return Status::InvalidArgument("pin vector size must match feature rows");
  }
  if (index->candidate_count() != x->rows()) {
    return Status::InvalidArgument(
        "incidence index size must match feature rows");
  }
  return Status::OK();
}

Result<AlignmentResult> IterAligner::Align(
    const AlignmentProblem& problem) const {
  ACTIVEITER_RETURN_IF_ERROR(problem.Validate());
  if (options_.c <= 0.0) {
    return Status::InvalidArgument("IterAlignerOptions.c must be > 0");
  }

  const size_t n = problem.x->rows();
  auto solver_or = RidgeSolver::Create(*problem.x, options_.c);
  if (!solver_or.ok()) return solver_or.status();
  const RidgeSolver& solver = solver_or.value();

  // Initial labels: pinned values, free links 0.
  Vector y(n);
  for (size_t i = 0; i < n; ++i) {
    y(i) = problem.pinned[i] == Pin::kPositive ? 1.0 : 0.0;
  }

  AlignmentResult result;
  for (size_t iter = 0; iter < options_.max_iterations; ++iter) {
    // (1-1) fit w against the current labels.
    Vector w = solver.Solve(y);
    // (1-2) infer labels under the cardinality constraint.
    Vector scores = solver.Predict(w);
    Vector y_next =
        options_.selection == SelectionAlgorithm::kGreedy
            ? GreedySelect(scores, *problem.index, problem.pinned,
                           options_.threshold)
            : HungarianSelect(scores, *problem.index, problem.pinned,
                              options_.threshold);
    // Queried negatives stay 0 and pinned positives stay 1 by construction
    // of GreedySelect; measure label movement.
    double delta = (y_next - y).Norm1();
    result.trace.delta_y.push_back(delta);
    y = std::move(y_next);
    result.w = std::move(w);
    result.scores = std::move(scores);
    if (delta == 0.0) {
      result.trace.converged = true;
      break;
    }
  }
  result.y = std::move(y);
  return result;
}

}  // namespace activeiter
