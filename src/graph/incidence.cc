#include "src/graph/incidence.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace activeiter {

size_t CandidateLinkSet::Add(NodeId u1, NodeId u2) {
  links_.emplace_back(u1, u2);
  return links_.size() - 1;
}

Status CandidateLinkSet::Remove(size_t id) {
  if (id >= links_.size()) {
    return Status::OutOfRange(
        StrFormat("candidate link id %zu out of range (%zu links)", id,
                  links_.size()));
  }
  if (removed(id)) {
    return Status::NotFound(
        StrFormat("candidate link %zu already removed", id));
  }
  if (removed_.size() < links_.size()) removed_.resize(links_.size(), false);
  removed_[id] = true;
  ++removed_count_;
  return Status::OK();
}

std::vector<size_t> CandidateLinkSet::Compact() {
  std::vector<size_t> remap(links_.size(), kRemovedId);
  size_t next = 0;
  for (size_t id = 0; id < links_.size(); ++id) {
    if (removed(id)) continue;
    remap[id] = next;
    links_[next] = links_[id];
    ++next;
  }
  links_.resize(next);
  removed_.clear();
  removed_count_ = 0;
  return remap;
}

IncidenceIndex::IncidenceIndex(const AlignedPair& pair,
                               const CandidateLinkSet& candidates)
    : candidates_(&candidates),
      users_first_(pair.first().NodeCount(NodeType::kUser)),
      users_second_(pair.second().NodeCount(NodeType::kUser)),
      indexed_count_(candidates.size()),
      by_first_(users_first_),
      by_second_(users_second_) {
  for (size_t id = 0; id < candidates.size(); ++id) {
    const auto& [u1, u2] = candidates.link(id);
    ACTIVEITER_CHECK_MSG(u1 < users_first_ && u2 < users_second_,
                         "candidate link endpoint out of range");
    by_first_[u1].push_back(id);
    by_second_[u2].push_back(id);
  }
}

void IncidenceIndex::SyncWithCandidates(const AlignedPair& pair) {
  users_first_ = pair.first().NodeCount(NodeType::kUser);
  users_second_ = pair.second().NodeCount(NodeType::kUser);
  ACTIVEITER_CHECK_MSG(
      users_first_ >= by_first_.size() && users_second_ >= by_second_.size(),
      "user universes may only grow");
  ACTIVEITER_CHECK_MSG(
      candidates_->size() >= indexed_count_,
      "candidate set shrank behind the index: shrinkage must flow through "
      "RemoveCandidates + CompactWith, not bare erasure");
  by_first_.resize(users_first_);
  by_second_.resize(users_second_);
  for (size_t id = indexed_count_; id < candidates_->size(); ++id) {
    const auto& [u1, u2] = candidates_->link(id);
    ACTIVEITER_CHECK_MSG(u1 < users_first_ && u2 < users_second_,
                         "candidate link endpoint out of range");
    by_first_[u1].push_back(id);
    by_second_[u2].push_back(id);
  }
  indexed_count_ = candidates_->size();
}

Status IncidenceIndex::RemoveCandidates(const std::vector<size_t>& ids) {
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= indexed_count_) {
      return Status::OutOfRange(StrFormat(
          "candidate removal id %zu out of indexed range (%zu)", ids[i],
          indexed_count_));
    }
    if (IsRemoved(ids[i])) {
      return Status::NotFound(
          StrFormat("candidate link %zu already removed", ids[i]));
    }
    for (size_t j = 0; j < i; ++j) {
      if (ids[j] == ids[i]) {
        return Status::NotFound(StrFormat(
            "candidate link %zu removed twice in one batch", ids[i]));
      }
    }
  }
  if (removed_.size() < indexed_count_) removed_.resize(indexed_count_, false);
  for (size_t id : ids) {
    removed_[id] = true;
    ++removed_count_;
    // Eager prune: removed links must never surface through the per-user
    // lists (snapshots copy them verbatim).
    const auto& [u1, u2] = candidates_->link(id);
    auto& first_list = by_first_[u1];
    first_list.erase(std::find(first_list.begin(), first_list.end(), id));
    auto& second_list = by_second_[u2];
    second_list.erase(std::find(second_list.begin(), second_list.end(), id));
  }
  return Status::OK();
}

void IncidenceIndex::CompactWith(const std::vector<size_t>& remap) {
  ACTIVEITER_CHECK_MSG(remap.size() == indexed_count_,
                       "compaction remap size mismatch");
  auto rewrite = [&remap](std::vector<std::vector<size_t>>& lists) {
    for (auto& list : lists) {
      for (size_t& id : list) {
        id = remap[id];
        ACTIVEITER_CHECK_MSG(id != CandidateLinkSet::kRemovedId,
                             "removed link survived the eager prune");
      }
    }
  };
  rewrite(by_first_);
  rewrite(by_second_);
  removed_.clear();
  removed_count_ = 0;
  indexed_count_ -= std::count(remap.begin(), remap.end(),
                               CandidateLinkSet::kRemovedId);
}

const std::vector<size_t>& IncidenceIndex::LinksOfFirst(NodeId u1) const {
  ACTIVEITER_CHECK(u1 < users_first_);
  return by_first_[u1];
}

const std::vector<size_t>& IncidenceIndex::LinksOfSecond(NodeId u2) const {
  ACTIVEITER_CHECK(u2 < users_second_);
  return by_second_[u2];
}

std::vector<size_t> IncidenceIndex::ConflictingLinks(size_t link_id) const {
  const auto& [u1, u2] = candidates_->link(link_id);
  std::vector<size_t> out;
  for (size_t other : by_first_[u1]) {
    if (other != link_id) out.push_back(other);
  }
  for (size_t other : by_second_[u2]) {
    if (other != link_id &&
        std::find(out.begin(), out.end(), other) == out.end()) {
      out.push_back(other);
    }
  }
  return out;
}

SparseMatrix IncidenceIndex::FirstIncidenceMatrix() const {
  std::vector<Triplet> trips;
  trips.reserve(candidates_->size());
  for (size_t id = 0; id < candidates_->size(); ++id) {
    if (IsRemoved(id)) continue;  // tombstoned column stays empty
    trips.push_back({candidates_->link(id).first, static_cast<uint32_t>(id),
                     1.0});
  }
  return SparseMatrix::FromTriplets(users_first_, candidates_->size(),
                                    std::move(trips));
}

SparseMatrix IncidenceIndex::SecondIncidenceMatrix() const {
  std::vector<Triplet> trips;
  trips.reserve(candidates_->size());
  for (size_t id = 0; id < candidates_->size(); ++id) {
    if (IsRemoved(id)) continue;  // tombstoned column stays empty
    trips.push_back({candidates_->link(id).second, static_cast<uint32_t>(id),
                     1.0});
  }
  return SparseMatrix::FromTriplets(users_second_, candidates_->size(),
                                    std::move(trips));
}

Vector IncidenceIndex::FirstDegrees(const Vector& y) const {
  ACTIVEITER_CHECK(y.size() == candidates_->size());
  Vector d(users_first_);
  for (size_t id = 0; id < candidates_->size(); ++id) {
    if (IsRemoved(id)) continue;
    d(candidates_->link(id).first) += y(id);
  }
  return d;
}

Vector IncidenceIndex::SecondDegrees(const Vector& y) const {
  ACTIVEITER_CHECK(y.size() == candidates_->size());
  Vector d(users_second_);
  for (size_t id = 0; id < candidates_->size(); ++id) {
    if (IsRemoved(id)) continue;
    d(candidates_->link(id).second) += y(id);
  }
  return d;
}

bool IncidenceIndex::SatisfiesOneToOne(const Vector& y) const {
  return SatisfiesCardinality(y, 1, 1);
}

bool IncidenceIndex::SatisfiesCardinality(const Vector& y,
                                          size_t capacity_first,
                                          size_t capacity_second) const {
  Vector d1 = FirstDegrees(y);
  Vector d2 = SecondDegrees(y);
  double cap1 = static_cast<double>(capacity_first);
  double cap2 = static_cast<double>(capacity_second);
  for (size_t i = 0; i < d1.size(); ++i) {
    if (d1(i) < -1e-9 || d1(i) > cap1 + 1e-9) return false;
  }
  for (size_t i = 0; i < d2.size(); ++i) {
    if (d2(i) < -1e-9 || d2(i) > cap2 + 1e-9) return false;
  }
  return true;
}

}  // namespace activeiter
