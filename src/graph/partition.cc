#include "src/graph/partition.h"

namespace activeiter {

Status ShardPartition::Validate() const {
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be >= 1");
  }
  if (block_size == 0) {
    return Status::InvalidArgument("block_size must be >= 1");
  }
  return Status::OK();
}

std::vector<CandidateSlice> PartitionCandidates(
    const CandidateLinkSet& candidates, const ShardPartition& partition) {
  ACTIVEITER_CHECK(partition.Validate().ok());
  std::vector<CandidateSlice> slices(partition.num_shards);
  for (size_t id = 0; id < candidates.size(); ++id) {
    const auto& [u1, u2] = candidates.link(id);
    CandidateSlice& slice = slices[partition.ShardOfFirstUser(u1)];
    slice.links.Add(u1, u2);
    slice.global_ids.push_back(id);
  }
  return slices;
}

}  // namespace activeiter
