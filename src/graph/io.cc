#include "src/graph/io.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/string_util.h"

namespace activeiter {
namespace {

constexpr const char kMagic[] = "activeiter-aligned-pair v1";

const RelationType kAllRelations[] = {
    RelationType::kFollow, RelationType::kWrite, RelationType::kAt,
    RelationType::kCheckin, RelationType::kContain};

const NodeType kAllNodeTypes[] = {NodeType::kUser, NodeType::kPost,
                                  NodeType::kWord, NodeType::kLocation,
                                  NodeType::kTimestamp};

void SaveNetwork(const HeteroNetwork& net, std::ostream* out) {
  *out << "network " << net.name() << "\n";
  *out << "nodes";
  for (NodeType t : kAllNodeTypes) *out << ' ' << net.NodeCount(t);
  *out << "\n";
  for (RelationType r : kAllRelations) {
    const auto& edges = net.Edges(r);
    *out << "edges " << RelationTypeName(r) << ' ' << edges.size() << "\n";
    for (const auto& [src, dst] : edges) {
      *out << src << ' ' << dst << "\n";
    }
  }
}

Result<RelationType> ParseRelation(const std::string& token) {
  for (RelationType r : kAllRelations) {
    if (token == RelationTypeName(r)) return r;
  }
  return Status::InvalidArgument("unknown relation: " + token);
}

Result<HeteroNetwork> LoadNetwork(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) || !StartsWith(line, "network ")) {
    return Status::InvalidArgument("expected 'network <name>' line");
  }
  HeteroNetwork net(NetworkSchema::SocialNetwork(), line.substr(8));

  if (!std::getline(*in, line) || !StartsWith(line, "nodes")) {
    return Status::InvalidArgument("expected 'nodes ...' line");
  }
  {
    std::istringstream fields(line.substr(5));
    for (NodeType t : kAllNodeTypes) {
      size_t count = 0;
      if (!(fields >> count)) {
        return Status::InvalidArgument("nodes line needs 5 counts");
      }
      net.AddNodes(t, count);
    }
  }

  for (RelationType expected : kAllRelations) {
    if (!std::getline(*in, line) || !StartsWith(line, "edges ")) {
      return Status::InvalidArgument("expected 'edges <relation> <count>'");
    }
    std::istringstream header(line.substr(6));
    std::string rel_name;
    size_t count = 0;
    if (!(header >> rel_name >> count)) {
      return Status::InvalidArgument("malformed edges header: " + line);
    }
    auto rel = ParseRelation(rel_name);
    if (!rel.ok()) return rel.status();
    if (rel.value() != expected) {
      return Status::InvalidArgument(
          StrFormat("edge sections out of order: expected %s, got %s",
                    RelationTypeName(expected), rel_name.c_str()));
    }
    for (size_t e = 0; e < count; ++e) {
      if (!std::getline(*in, line)) {
        return Status::InvalidArgument("edge list truncated");
      }
      std::istringstream edge(line);
      NodeId src = 0, dst = 0;
      if (!(edge >> src >> dst)) {
        return Status::InvalidArgument("malformed edge line: " + line);
      }
      ACTIVEITER_RETURN_IF_ERROR(net.AddEdge(rel.value(), src, dst));
    }
  }
  return net;
}

}  // namespace

void SaveAlignedPair(const AlignedPair& pair, std::ostream* out) {
  ACTIVEITER_CHECK(out != nullptr);
  *out << kMagic << "\n";
  SaveNetwork(pair.first(), out);
  SaveNetwork(pair.second(), out);
  *out << "anchors " << pair.anchor_count() << "\n";
  for (const auto& a : pair.anchors()) {
    *out << a.u1 << ' ' << a.u2 << "\n";
  }
}

Result<AlignedPair> LoadAlignedPair(std::istream* in) {
  ACTIVEITER_CHECK(in != nullptr);
  std::string line;
  if (!std::getline(*in, line) || line != kMagic) {
    return Status::InvalidArgument("bad magic line (not an aligned pair)");
  }
  auto first = LoadNetwork(in);
  if (!first.ok()) return first.status();
  auto second = LoadNetwork(in);
  if (!second.ok()) return second.status();

  AlignedPair pair(std::move(first).value(), std::move(second).value());
  if (!std::getline(*in, line) || !StartsWith(line, "anchors ")) {
    return Status::InvalidArgument("expected 'anchors <count>'");
  }
  size_t count = 0;
  {
    std::istringstream header(line.substr(8));
    if (!(header >> count)) {
      return Status::InvalidArgument("malformed anchors header");
    }
  }
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(*in, line)) {
      return Status::InvalidArgument("anchor list truncated");
    }
    std::istringstream anchor(line);
    NodeId u1 = 0, u2 = 0;
    if (!(anchor >> u1 >> u2)) {
      return Status::InvalidArgument("malformed anchor line: " + line);
    }
    ACTIVEITER_RETURN_IF_ERROR(pair.AddAnchor(u1, u2));
  }
  return pair;
}

Status SaveAlignedPairToFile(const AlignedPair& pair,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::NotFound("cannot open for writing: " + path);
  }
  SaveAlignedPair(pair, &out);
  out.flush();
  if (!out) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

Result<AlignedPair> LoadAlignedPairFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  return LoadAlignedPair(&in);
}

}  // namespace activeiter
