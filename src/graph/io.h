// Text serialization of aligned network pairs.
//
// A small line-oriented format so users can persist generated datasets or
// load their own crawls into the library:
//
//   activeiter-aligned-pair v1
//   network <name>
//   nodes <User> <Post> <Word> <Location> <Timestamp>
//   edges <relation> <count>
//   <src> <dst>
//   ...
//   network <name>            (second network, same layout)
//   ...
//   anchors <count>
//   <u1> <u2>
//   ...
//
// All ids are the type-local contiguous ids used throughout the library.

#ifndef ACTIVEITER_GRAPH_IO_H_
#define ACTIVEITER_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "src/common/status.h"
#include "src/graph/aligned_pair.h"

namespace activeiter {

/// Writes the pair to a stream. Always succeeds on a healthy stream.
void SaveAlignedPair(const AlignedPair& pair, std::ostream* out);

/// Parses a pair from a stream. Returns InvalidArgument on malformed
/// input (bad magic, counts out of range, edges violating the schema,
/// anchors violating the one-to-one constraint, ...).
Result<AlignedPair> LoadAlignedPair(std::istream* in);

/// File-path conveniences.
Status SaveAlignedPairToFile(const AlignedPair& pair,
                             const std::string& path);
Result<AlignedPair> LoadAlignedPairFromFile(const std::string& path);

}  // namespace activeiter

#endif  // ACTIVEITER_GRAPH_IO_H_
