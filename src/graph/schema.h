// Network schema (Definition 3): the type-level description of an
// attributed heterogeneous social network, used to validate meta paths and
// meta diagrams before any counting happens.

#ifndef ACTIVEITER_GRAPH_SCHEMA_H_
#define ACTIVEITER_GRAPH_SCHEMA_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/graph/types.h"

namespace activeiter {

/// The schema of one attributed heterogeneous social network: which node
/// types exist and which typed relations connect them.
class NetworkSchema {
 public:
  /// The full social-network schema of Figure 2 (User/Post/Word/Location/
  /// Timestamp with follow/write/at/checkin/contain).
  static NetworkSchema SocialNetwork();

  /// A schema restricted to users and follow links (used by tests and the
  /// IsoRank baseline, which ignores attributes).
  static NetworkSchema UsersOnly();

  bool HasNodeType(NodeType type) const;
  bool HasRelation(RelationType type) const;

  const std::vector<NodeType>& node_types() const { return node_types_; }
  const std::vector<RelationType>& relation_types() const {
    return relation_types_;
  }

  /// Validates that `relation` connects `src` to `dst` in this schema,
  /// in the given direction.
  Status ValidateStep(NodeType src, RelationType relation, NodeType dst,
                      bool forward) const;

  std::string ToString() const;

 private:
  std::vector<NodeType> node_types_;
  std::vector<RelationType> relation_types_;
};

/// Schema of the aligned pair (both sides share the same social schema plus
/// the `anchor` relation between user types — Definition 3).
struct AlignedSchema {
  NetworkSchema first = NetworkSchema::SocialNetwork();
  NetworkSchema second = NetworkSchema::SocialNetwork();
};

}  // namespace activeiter

#endif  // ACTIVEITER_GRAPH_SCHEMA_H_
