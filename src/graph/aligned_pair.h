// A pair of aligned attributed heterogeneous networks (Definition 2):
// two HeteroNetworks plus the ground-truth anchor links between their user
// sets, under the one-to-one cardinality constraint.

#ifndef ACTIVEITER_GRAPH_ALIGNED_PAIR_H_
#define ACTIVEITER_GRAPH_ALIGNED_PAIR_H_

#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/graph/hetero_network.h"
#include "src/linalg/sparse.h"

namespace activeiter {

/// An anchor link: (user id in network 1, user id in network 2).
struct AnchorLink {
  NodeId u1 = 0;
  NodeId u2 = 0;

  bool operator==(const AnchorLink& other) const {
    return u1 == other.u1 && u2 == other.u2;
  }
  bool operator<(const AnchorLink& other) const {
    return u1 != other.u1 ? u1 < other.u1 : u2 < other.u2;
  }
};

/// One change batch for an aligned pair: per-side node/edge deltas, the
/// ground-truth anchors revealed with them (new shared users arriving
/// online bring their true partner links for the oracle and evaluation;
/// the model never sees them unless queried or pinned), and anchors
/// retracted — previously revealed links withdrawn, freeing both endpoints
/// under the one-to-one constraint.
struct PairDelta {
  GraphDelta first;
  GraphDelta second;
  std::vector<AnchorLink> new_anchors;
  std::vector<AnchorLink> retracted_anchors;

  bool empty() const {
    return first.empty() && second.empty() && new_anchors.empty() &&
           retracted_anchors.empty();
  }
};

/// Two aligned networks plus anchor ground truth.
class AlignedPair {
 public:
  AlignedPair(HeteroNetwork first, HeteroNetwork second);

  const HeteroNetwork& first() const { return first_; }
  const HeteroNetwork& second() const { return second_; }

  /// Adds a ground-truth anchor link. Enforces the one-to-one constraint
  /// and id ranges; violations return FailedPrecondition/OutOfRange.
  Status AddAnchor(NodeId u1, NodeId u2);

  /// Applies one change batch atomically: both side deltas, every
  /// retracted anchor (must currently exist, no intra-batch duplicates)
  /// and every new anchor (ranges, one-to-one against the post-retraction
  /// maps, intra-batch duplicates) are validated before anything mutates;
  /// an invalid batch leaves the pair untouched. Retractions apply before
  /// additions, so a batch may retract (u1, a) and reveal (u1, b).
  Status ApplyDelta(const PairDelta& delta);

  const std::vector<AnchorLink>& anchors() const { return anchors_; }
  size_t anchor_count() const { return anchors_.size(); }

  /// True if (u1, u2) is a ground-truth anchor.
  bool IsAnchor(NodeId u1, NodeId u2) const;

  /// The ground-truth partner of u1 in network 2, or nullopt-like -1.
  /// Returns false if u1 is not anchored.
  bool PartnerOfFirst(NodeId u1, NodeId* u2) const;
  bool PartnerOfSecond(NodeId u2, NodeId* u1) const;

  /// |U1| x |U2| 0/1 matrix over ALL ground-truth anchors.
  SparseMatrix FullAnchorMatrix() const;

  /// |U1| x |U2| 0/1 matrix restricted to the given subset of anchors —
  /// the *training* anchor matrix that bridges inter-network meta paths.
  SparseMatrix AnchorMatrixFor(const std::vector<AnchorLink>& subset) const;

  /// Shared attribute-space sanity check: both sides must have identical
  /// Word/Location/Timestamp universe sizes (attributes are shared across
  /// networks per the paper). Returns FailedPrecondition otherwise.
  Status ValidateSharedAttributes() const;

 private:
  HeteroNetwork first_;
  HeteroNetwork second_;
  std::vector<AnchorLink> anchors_;
  // -1 = unanchored; else the partner id. Sized lazily to user counts.
  std::vector<int64_t> partner_of_first_;
  std::vector<int64_t> partner_of_second_;
};

}  // namespace activeiter

#endif  // ACTIVEITER_GRAPH_ALIGNED_PAIR_H_
