#include "src/graph/schema.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace activeiter {

const char* NodeTypeName(NodeType type) {
  switch (type) {
    case NodeType::kUser:
      return "User";
    case NodeType::kPost:
      return "Post";
    case NodeType::kWord:
      return "Word";
    case NodeType::kLocation:
      return "Location";
    case NodeType::kTimestamp:
      return "Timestamp";
  }
  return "?";
}

const char* RelationTypeName(RelationType type) {
  switch (type) {
    case RelationType::kFollow:
      return "follow";
    case RelationType::kWrite:
      return "write";
    case RelationType::kAt:
      return "at";
    case RelationType::kCheckin:
      return "checkin";
    case RelationType::kContain:
      return "contain";
  }
  return "?";
}

NodeType RelationSourceType(RelationType type) {
  switch (type) {
    case RelationType::kFollow:
    case RelationType::kWrite:
      return NodeType::kUser;
    case RelationType::kAt:
    case RelationType::kCheckin:
    case RelationType::kContain:
      return NodeType::kPost;
  }
  return NodeType::kUser;
}

NodeType RelationTargetType(RelationType type) {
  switch (type) {
    case RelationType::kFollow:
      return NodeType::kUser;
    case RelationType::kWrite:
      return NodeType::kPost;
    case RelationType::kAt:
      return NodeType::kTimestamp;
    case RelationType::kCheckin:
      return NodeType::kLocation;
    case RelationType::kContain:
      return NodeType::kWord;
  }
  return NodeType::kUser;
}

NetworkSchema NetworkSchema::SocialNetwork() {
  NetworkSchema s;
  s.node_types_ = {NodeType::kUser, NodeType::kPost, NodeType::kWord,
                   NodeType::kLocation, NodeType::kTimestamp};
  s.relation_types_ = {RelationType::kFollow, RelationType::kWrite,
                       RelationType::kAt, RelationType::kCheckin,
                       RelationType::kContain};
  return s;
}

NetworkSchema NetworkSchema::UsersOnly() {
  NetworkSchema s;
  s.node_types_ = {NodeType::kUser};
  s.relation_types_ = {RelationType::kFollow};
  return s;
}

bool NetworkSchema::HasNodeType(NodeType type) const {
  return std::find(node_types_.begin(), node_types_.end(), type) !=
         node_types_.end();
}

bool NetworkSchema::HasRelation(RelationType type) const {
  return std::find(relation_types_.begin(), relation_types_.end(), type) !=
         relation_types_.end();
}

Status NetworkSchema::ValidateStep(NodeType src, RelationType relation,
                                   NodeType dst, bool forward) const {
  if (!HasRelation(relation)) {
    return Status::InvalidArgument(
        StrFormat("relation %s not in schema", RelationTypeName(relation)));
  }
  NodeType expect_src = forward ? RelationSourceType(relation)
                                : RelationTargetType(relation);
  NodeType expect_dst = forward ? RelationTargetType(relation)
                                : RelationSourceType(relation);
  if (src != expect_src || dst != expect_dst) {
    return Status::InvalidArgument(StrFormat(
        "relation %s does not connect %s -> %s (direction %s)",
        RelationTypeName(relation), NodeTypeName(src), NodeTypeName(dst),
        forward ? "forward" : "reverse"));
  }
  if (!HasNodeType(src) || !HasNodeType(dst)) {
    return Status::InvalidArgument("endpoint node type not in schema");
  }
  return Status::OK();
}

std::string NetworkSchema::ToString() const {
  std::vector<std::string> nodes, rels;
  for (auto t : node_types_) nodes.push_back(NodeTypeName(t));
  for (auto r : relation_types_) rels.push_back(RelationTypeName(r));
  return "Schema(nodes=[" + Join(nodes, ", ") + "], relations=[" +
         Join(rels, ", ") + "])";
}

}  // namespace activeiter
