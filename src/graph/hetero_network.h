// Storage for one attributed heterogeneous social network (Definition 1).
//
// Nodes of each type live in their own contiguous id space [0, count).
// Edges are stored per relation type as (src, dst) pairs and can be
// exported as CSR adjacency matrices, which is the representation the
// meta-diagram engine consumes.

#ifndef ACTIVEITER_GRAPH_HETERO_NETWORK_H_
#define ACTIVEITER_GRAPH_HETERO_NETWORK_H_

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/graph/schema.h"
#include "src/graph/types.h"
#include "src/linalg/sparse.h"

namespace activeiter {

/// One heterogeneous network: typed node counts + typed edge lists.
class HeteroNetwork {
 public:
  /// Creates a network with the given schema and a human-readable name
  /// (e.g. "twitter-like").
  explicit HeteroNetwork(NetworkSchema schema, std::string name = "network");

  const NetworkSchema& schema() const { return schema_; }
  const std::string& name() const { return name_; }

  /// Declares `count` nodes of `type`; returns the first new id.
  /// Repeated calls append to the id space.
  NodeId AddNodes(NodeType type, size_t count);

  /// Number of nodes of `type`.
  size_t NodeCount(NodeType type) const;

  /// Adds a typed edge. Endpoint types are dictated by the relation; ids
  /// must be in range (checked). Duplicate edges are allowed at insertion
  /// and deduplicated when building adjacency matrices.
  Status AddEdge(RelationType relation, NodeId src, NodeId dst);

  /// Number of stored edges of `relation` (including duplicates).
  size_t EdgeCount(RelationType relation) const;

  /// Raw edge list of `relation`.
  const std::vector<std::pair<NodeId, NodeId>>& Edges(
      RelationType relation) const;

  /// Returns the 0/1 adjacency matrix of `relation`
  /// (rows = source type ids, cols = target type ids, deduplicated).
  SparseMatrix AdjacencyMatrix(RelationType relation) const;

  /// Out-degree of user `u` in the follow relation.
  size_t FollowOutDegree(NodeId u) const;

  /// Total nodes across all types.
  size_t TotalNodeCount() const;

  /// Total edges across all relations.
  size_t TotalEdgeCount() const;

  std::string ToString() const;

 private:
  NetworkSchema schema_;
  std::string name_;
  std::array<size_t, kNumNodeTypes> node_counts_{};
  std::array<std::vector<std::pair<NodeId, NodeId>>, kNumRelationTypes>
      edges_{};
};

}  // namespace activeiter

#endif  // ACTIVEITER_GRAPH_HETERO_NETWORK_H_
