// Storage for one attributed heterogeneous social network (Definition 1).
//
// Nodes of each type live in their own contiguous id space [0, count).
// Edges are stored per relation type as (src, dst) pairs and can be
// exported as CSR adjacency matrices, which is the representation the
// meta-diagram engine consumes.

#ifndef ACTIVEITER_GRAPH_HETERO_NETWORK_H_
#define ACTIVEITER_GRAPH_HETERO_NETWORK_H_

#include <array>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/graph/schema.h"
#include "src/graph/types.h"
#include "src/linalg/sparse.h"

namespace activeiter {

/// One batch of node growth: `count` new nodes of `type` appended to that
/// type's contiguous id space.
struct NodeDelta {
  NodeType type = NodeType::kUser;
  size_t count = 0;
};

/// One new typed edge. Endpoint ids may reference nodes added by the same
/// delta batch (they are validated against the post-growth id ranges).
struct EdgeDelta {
  RelationType relation = RelationType::kFollow;
  NodeId src = 0;
  NodeId dst = 0;
};

/// One batch of change for a single network: nodes first, then added
/// edges, then removed edges. This is the unit the online ingestor
/// consumes — "new users/links arriving online, old links dropping off" as
/// a value the serving layer can queue, validate and apply atomically.
///
/// Removal semantics: each entry in `removed_edges` deletes ONE stored
/// occurrence of that (relation, src, dst) edge. Since adjacency matrices
/// binarize duplicates, removing one of k duplicate insertions only
/// changes the graph once the last occurrence goes. Node id spaces never
/// shrink — a "deleted user" is a user whose edges have been removed.
struct GraphDelta {
  std::vector<NodeDelta> nodes;
  std::vector<EdgeDelta> edges;
  std::vector<EdgeDelta> removed_edges;

  bool empty() const {
    return nodes.empty() && edges.empty() && removed_edges.empty();
  }

  /// Relations with at least one added OR removed edge (sorted,
  /// deduplicated) — the dirty set the delta-aware feature engine
  /// invalidates by.
  std::vector<RelationType> TouchedRelations() const;

  /// Total new nodes of `type` in this delta.
  size_t NodeGrowth(NodeType type) const;
};

/// One heterogeneous network: typed node counts + typed edge lists.
class HeteroNetwork {
 public:
  /// Creates a network with the given schema and a human-readable name
  /// (e.g. "twitter-like").
  explicit HeteroNetwork(NetworkSchema schema, std::string name = "network");

  const NetworkSchema& schema() const { return schema_; }
  const std::string& name() const { return name_; }

  /// Declares `count` nodes of `type`; returns the first new id.
  /// Repeated calls append to the id space.
  NodeId AddNodes(NodeType type, size_t count);

  /// Number of nodes of `type`.
  size_t NodeCount(NodeType type) const;

  /// Adds a typed edge. Endpoint types are dictated by the relation; ids
  /// must be in range (checked). Duplicate edges are allowed at insertion
  /// and deduplicated when building adjacency matrices.
  Status AddEdge(RelationType relation, NodeId src, NodeId dst);

  /// Checks a batch without applying it: every added edge is validated
  /// against the id ranges *after* the batch's node growth, and every
  /// removed edge must name a stored occurrence still present after the
  /// batch's own additions and earlier removals (so double-removal of a
  /// singly-stored edge is rejected).
  Status ValidateDelta(const GraphDelta& delta) const;

  /// Applies one batch atomically (ValidateDelta first, mutate only on
  /// success), so a bad delta leaves the network untouched. Order: node
  /// growth, then edge additions, then edge removals.
  Status ApplyDelta(const GraphDelta& delta);

  /// Number of stored edges of `relation` (including duplicates).
  size_t EdgeCount(RelationType relation) const;

  /// Raw edge list of `relation`.
  const std::vector<std::pair<NodeId, NodeId>>& Edges(
      RelationType relation) const;

  /// Returns the 0/1 adjacency matrix of `relation`
  /// (rows = source type ids, cols = target type ids, deduplicated).
  SparseMatrix AdjacencyMatrix(RelationType relation) const;

  /// Out-degree of user `u` in the follow relation.
  size_t FollowOutDegree(NodeId u) const;

  /// Total nodes across all types.
  size_t TotalNodeCount() const;

  /// Total edges across all relations.
  size_t TotalEdgeCount() const;

  std::string ToString() const;

 private:
  NetworkSchema schema_;
  std::string name_;
  std::array<size_t, kNumNodeTypes> node_counts_{};
  std::array<std::vector<std::pair<NodeId, NodeId>>, kNumRelationTypes>
      edges_{};
};

}  // namespace activeiter

#endif  // ACTIVEITER_GRAPH_HETERO_NETWORK_H_
