#include "src/graph/aligned_pair.h"

#include <algorithm>

#include "src/common/string_util.h"

namespace activeiter {

AlignedPair::AlignedPair(HeteroNetwork first, HeteroNetwork second)
    : first_(std::move(first)), second_(std::move(second)) {
  partner_of_first_.assign(first_.NodeCount(NodeType::kUser), -1);
  partner_of_second_.assign(second_.NodeCount(NodeType::kUser), -1);
}

Status AlignedPair::AddAnchor(NodeId u1, NodeId u2) {
  if (u1 >= first_.NodeCount(NodeType::kUser) ||
      u2 >= second_.NodeCount(NodeType::kUser)) {
    return Status::OutOfRange(
        StrFormat("anchor (%u, %u) out of user range", u1, u2));
  }
  if (partner_of_first_[u1] != -1) {
    return Status::FailedPrecondition(StrFormat(
        "user %u in %s already anchored (one-to-one constraint)", u1,
        first_.name().c_str()));
  }
  if (partner_of_second_[u2] != -1) {
    return Status::FailedPrecondition(StrFormat(
        "user %u in %s already anchored (one-to-one constraint)", u2,
        second_.name().c_str()));
  }
  partner_of_first_[u1] = u2;
  partner_of_second_[u2] = u1;
  anchors_.push_back({u1, u2});
  return Status::OK();
}

Status AlignedPair::ApplyDelta(const PairDelta& delta) {
  // Validate retractions against the CURRENT state (a retraction may only
  // withdraw an anchor that was actually revealed), then new anchors
  // against the post-growth user universes and the post-retraction
  // one-to-one maps — all before either network mutates; HeteroNetwork::
  // ApplyDelta is itself atomic, so validating anchors first makes the
  // whole batch all-or-nothing.
  const std::vector<AnchorLink>& retracted = delta.retracted_anchors;
  for (size_t i = 0; i < retracted.size(); ++i) {
    const AnchorLink& r = retracted[i];
    if (!IsAnchor(r.u1, r.u2)) {
      return Status::NotFound(StrFormat(
          "retraction of anchor (%u, %u): no such revealed anchor", r.u1,
          r.u2));
    }
    for (size_t j = 0; j < i; ++j) {
      if (retracted[j].u1 == r.u1 || retracted[j].u2 == r.u2) {
        return Status::FailedPrecondition(StrFormat(
            "anchor (%u, %u) retracted twice in one batch", r.u1, r.u2));
      }
    }
  }
  // True iff this batch retracts the anchor currently holding `u` on the
  // given side — that endpoint is free again for a new anchor.
  auto first_freed = [&retracted](NodeId u1) {
    for (const AnchorLink& r : retracted) {
      if (r.u1 == u1) return true;
    }
    return false;
  };
  auto second_freed = [&retracted](NodeId u2) {
    for (const AnchorLink& r : retracted) {
      if (r.u2 == u2) return true;
    }
    return false;
  };
  const size_t users_first = first_.NodeCount(NodeType::kUser) +
                             delta.first.NodeGrowth(NodeType::kUser);
  const size_t users_second = second_.NodeCount(NodeType::kUser) +
                              delta.second.NodeGrowth(NodeType::kUser);
  const std::vector<AnchorLink>& batch = delta.new_anchors;
  for (size_t i = 0; i < batch.size(); ++i) {
    const AnchorLink& a = batch[i];
    if (a.u1 >= users_first || a.u2 >= users_second) {
      return Status::OutOfRange(
          StrFormat("delta anchor (%u, %u) out of user range", a.u1, a.u2));
    }
    const bool u1_taken = a.u1 < partner_of_first_.size() &&
                          partner_of_first_[a.u1] != -1 && !first_freed(a.u1);
    const bool u2_taken = a.u2 < partner_of_second_.size() &&
                          partner_of_second_[a.u2] != -1 &&
                          !second_freed(a.u2);
    if (u1_taken || u2_taken) {
      return Status::FailedPrecondition(StrFormat(
          "delta anchor (%u, %u) violates the one-to-one constraint", a.u1,
          a.u2));
    }
    // Intra-batch duplicates: batches are small, a quadratic scan is fine.
    for (size_t j = 0; j < i; ++j) {
      if (batch[j].u1 == a.u1 || batch[j].u2 == a.u2) {
        return Status::FailedPrecondition(StrFormat(
            "delta anchors (%u, %u) and (%u, %u) share a user", batch[j].u1,
            batch[j].u2, a.u1, a.u2));
      }
    }
  }
  // Validate the second side before the (self-validating) first apply so a
  // bad second delta cannot leave the first network mutated.
  ACTIVEITER_RETURN_IF_ERROR(second_.ValidateDelta(delta.second));
  ACTIVEITER_RETURN_IF_ERROR(first_.ApplyDelta(delta.first));
  ACTIVEITER_RETURN_IF_ERROR(second_.ApplyDelta(delta.second));
  for (const AnchorLink& r : delta.retracted_anchors) {
    partner_of_first_[r.u1] = -1;
    partner_of_second_[r.u2] = -1;
    anchors_.erase(std::find(anchors_.begin(), anchors_.end(), r));
  }
  partner_of_first_.resize(users_first, -1);
  partner_of_second_.resize(users_second, -1);
  for (const AnchorLink& a : delta.new_anchors) {
    partner_of_first_[a.u1] = a.u2;
    partner_of_second_[a.u2] = a.u1;
    anchors_.push_back(a);
  }
  return Status::OK();
}

bool AlignedPair::IsAnchor(NodeId u1, NodeId u2) const {
  return u1 < partner_of_first_.size() &&
         partner_of_first_[u1] == static_cast<int64_t>(u2);
}

bool AlignedPair::PartnerOfFirst(NodeId u1, NodeId* u2) const {
  if (u1 >= partner_of_first_.size() || partner_of_first_[u1] < 0) {
    return false;
  }
  *u2 = static_cast<NodeId>(partner_of_first_[u1]);
  return true;
}

bool AlignedPair::PartnerOfSecond(NodeId u2, NodeId* u1) const {
  if (u2 >= partner_of_second_.size() || partner_of_second_[u2] < 0) {
    return false;
  }
  *u1 = static_cast<NodeId>(partner_of_second_[u2]);
  return true;
}

SparseMatrix AlignedPair::FullAnchorMatrix() const {
  return AnchorMatrixFor(anchors_);
}

SparseMatrix AlignedPair::AnchorMatrixFor(
    const std::vector<AnchorLink>& subset) const {
  std::vector<Triplet> trips;
  trips.reserve(subset.size());
  for (const auto& a : subset) {
    ACTIVEITER_CHECK(a.u1 < first_.NodeCount(NodeType::kUser));
    ACTIVEITER_CHECK(a.u2 < second_.NodeCount(NodeType::kUser));
    trips.push_back({a.u1, a.u2, 1.0});
  }
  return SparseMatrix::FromTriplets(first_.NodeCount(NodeType::kUser),
                                    second_.NodeCount(NodeType::kUser),
                                    std::move(trips));
}

Status AlignedPair::ValidateSharedAttributes() const {
  for (NodeType t :
       {NodeType::kWord, NodeType::kLocation, NodeType::kTimestamp}) {
    if (first_.NodeCount(t) != second_.NodeCount(t)) {
      return Status::FailedPrecondition(StrFormat(
          "shared attribute universe mismatch for %s: %zu vs %zu",
          NodeTypeName(t), first_.NodeCount(t), second_.NodeCount(t)));
    }
  }
  return Status::OK();
}

}  // namespace activeiter
