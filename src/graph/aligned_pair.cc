#include "src/graph/aligned_pair.h"

#include "src/common/string_util.h"

namespace activeiter {

AlignedPair::AlignedPair(HeteroNetwork first, HeteroNetwork second)
    : first_(std::move(first)), second_(std::move(second)) {
  partner_of_first_.assign(first_.NodeCount(NodeType::kUser), -1);
  partner_of_second_.assign(second_.NodeCount(NodeType::kUser), -1);
}

Status AlignedPair::AddAnchor(NodeId u1, NodeId u2) {
  if (u1 >= first_.NodeCount(NodeType::kUser) ||
      u2 >= second_.NodeCount(NodeType::kUser)) {
    return Status::OutOfRange(
        StrFormat("anchor (%u, %u) out of user range", u1, u2));
  }
  if (partner_of_first_[u1] != -1) {
    return Status::FailedPrecondition(StrFormat(
        "user %u in %s already anchored (one-to-one constraint)", u1,
        first_.name().c_str()));
  }
  if (partner_of_second_[u2] != -1) {
    return Status::FailedPrecondition(StrFormat(
        "user %u in %s already anchored (one-to-one constraint)", u2,
        second_.name().c_str()));
  }
  partner_of_first_[u1] = u2;
  partner_of_second_[u2] = u1;
  anchors_.push_back({u1, u2});
  return Status::OK();
}

bool AlignedPair::IsAnchor(NodeId u1, NodeId u2) const {
  return u1 < partner_of_first_.size() &&
         partner_of_first_[u1] == static_cast<int64_t>(u2);
}

bool AlignedPair::PartnerOfFirst(NodeId u1, NodeId* u2) const {
  if (u1 >= partner_of_first_.size() || partner_of_first_[u1] < 0) {
    return false;
  }
  *u2 = static_cast<NodeId>(partner_of_first_[u1]);
  return true;
}

bool AlignedPair::PartnerOfSecond(NodeId u2, NodeId* u1) const {
  if (u2 >= partner_of_second_.size() || partner_of_second_[u2] < 0) {
    return false;
  }
  *u1 = static_cast<NodeId>(partner_of_second_[u2]);
  return true;
}

SparseMatrix AlignedPair::FullAnchorMatrix() const {
  return AnchorMatrixFor(anchors_);
}

SparseMatrix AlignedPair::AnchorMatrixFor(
    const std::vector<AnchorLink>& subset) const {
  std::vector<Triplet> trips;
  trips.reserve(subset.size());
  for (const auto& a : subset) {
    ACTIVEITER_CHECK(a.u1 < first_.NodeCount(NodeType::kUser));
    ACTIVEITER_CHECK(a.u2 < second_.NodeCount(NodeType::kUser));
    trips.push_back({a.u1, a.u2, 1.0});
  }
  return SparseMatrix::FromTriplets(first_.NodeCount(NodeType::kUser),
                                    second_.NodeCount(NodeType::kUser),
                                    std::move(trips));
}

Status AlignedPair::ValidateSharedAttributes() const {
  for (NodeType t :
       {NodeType::kWord, NodeType::kLocation, NodeType::kTimestamp}) {
    if (first_.NodeCount(t) != second_.NodeCount(t)) {
      return Status::FailedPrecondition(StrFormat(
          "shared attribute universe mismatch for %s: %zu vs %zu",
          NodeTypeName(t), first_.NodeCount(t), second_.NodeCount(t)));
    }
  }
  return Status::OK();
}

}  // namespace activeiter
