// Candidate link sets and user-node/anchor-link incidence structure.
//
// The cardinality constraint of the paper (§III-C.4) is expressed through
// the incidence matrices A(1) ∈ {0,1}^{|U1|×|H|} and A(2) ∈ {0,1}^{|U2|×|H|}:
// the one-to-one constraint is 0 ≤ A(i)·y ≤ 1. This module builds those
// matrices and the conflict lookup (links sharing an endpoint) that both the
// greedy selector and the active query strategy need.

#ifndef ACTIVEITER_GRAPH_INCIDENCE_H_
#define ACTIVEITER_GRAPH_INCIDENCE_H_

#include <utility>
#include <vector>

#include "src/graph/aligned_pair.h"
#include "src/graph/types.h"
#include "src/linalg/sparse.h"
#include "src/linalg/vector.h"

namespace activeiter {

/// The candidate anchor-link set H of one experiment: an ordered list of
/// (u1, u2) pairs. Index into this list is the "link id" used everywhere
/// downstream (feature rows, label vector y, incidence columns).
///
/// Shrinkage is two-phase: Remove() tombstones a link (id space and link()
/// stay valid so in-flight consumers can still gather the row), then
/// Compact() erases every tombstone at once, renumbering the survivors.
class CandidateLinkSet {
 public:
  /// Remap value for a link erased by Compact().
  static constexpr size_t kRemovedId = static_cast<size_t>(-1);

  CandidateLinkSet() = default;

  /// Appends a candidate link and returns its link id.
  size_t Add(NodeId u1, NodeId u2);

  /// Tombstones link `id`. Out-of-range ids and double-removal are Status
  /// errors; nothing changes on failure.
  Status Remove(size_t id);

  /// True iff `id` is tombstoned (awaiting Compact()).
  bool removed(size_t id) const {
    return id < removed_.size() && removed_[id];
  }
  size_t removed_count() const { return removed_count_; }

  /// Erases every tombstoned link, renumbering survivors in order.
  /// Returns remap with remap[old_id] == new id, or kRemovedId for erased
  /// links — feed it to IncidenceIndex::CompactWith and any parallel
  /// per-link arrays (pins, global ids, design-matrix rows).
  std::vector<size_t> Compact();

  size_t size() const { return links_.size(); }
  bool empty() const { return links_.empty(); }

  const std::pair<NodeId, NodeId>& link(size_t id) const {
    ACTIVEITER_CHECK(id < links_.size());
    return links_[id];
  }
  const std::vector<std::pair<NodeId, NodeId>>& links() const {
    return links_;
  }

 private:
  std::vector<std::pair<NodeId, NodeId>> links_;
  std::vector<bool> removed_;  // sized lazily; empty = no tombstones
  size_t removed_count_ = 0;
};

/// Incidence structure of a candidate set: per-user link lists plus the
/// sparse incidence matrices of the paper.
class IncidenceIndex {
 public:
  /// Builds the index; user universes sized from the aligned pair.
  IncidenceIndex(const AlignedPair& pair, const CandidateLinkSet& candidates);

  /// Catches the index up with growth: re-sizes the per-user link lists to
  /// the pair's current user universes and indexes every candidate
  /// appended to the (borrowed) candidate set since construction or the
  /// last sync. O(new users + new links); existing lists are untouched.
  /// Shrinkage must flow through RemoveCandidates + CompactWith first —
  /// a candidate set that shrank behind the index's back is a CHECK.
  void SyncWithCandidates(const AlignedPair& pair);

  /// Validates and tombstones candidates: every id must be in range and
  /// not already removed; duplicate ids within one call are an error.
  /// Nothing mutates on failure. On success the per-user link lists are
  /// pruned eagerly, so LinksOfFirst/LinksOfSecond, ConflictingLinks, the
  /// incidence matrices and degree vectors never surface a removed link
  /// (its column stays allocated but empty until CompactWith).
  Status RemoveCandidates(const std::vector<size_t>& ids);

  /// Finishes shrinkage after the borrowed candidate set compacted:
  /// rewrites surviving link ids through `remap` (the return value of
  /// CandidateLinkSet::Compact()) and clears the tombstone set.
  void CompactWith(const std::vector<size_t>& remap);

  /// All candidate link ids incident to user u1 of network 1 / u2 of net 2.
  const std::vector<size_t>& LinksOfFirst(NodeId u1) const;
  const std::vector<size_t>& LinksOfSecond(NodeId u2) const;

  /// Link ids that conflict with `link_id` (share either endpoint),
  /// excluding `link_id` itself. Order: first-side conflicts then
  /// second-side conflicts, each in insertion order, deduplicated.
  std::vector<size_t> ConflictingLinks(size_t link_id) const;

  /// A(1): |U1| × |H| incidence matrix.
  SparseMatrix FirstIncidenceMatrix() const;

  /// A(2): |U2| × |H| incidence matrix.
  SparseMatrix SecondIncidenceMatrix() const;

  /// Degree vectors d(i) = A(i)·y for a label vector y over H.
  Vector FirstDegrees(const Vector& y) const;
  Vector SecondDegrees(const Vector& y) const;

  /// True iff 0 ≤ A(1)y ≤ 1 and 0 ≤ A(2)y ≤ 1 (the one-to-one constraint).
  bool SatisfiesOneToOne(const Vector& y) const;

  /// Generalised check: 0 ≤ A(1)y ≤ cap1 and 0 ≤ A(2)y ≤ cap2.
  bool SatisfiesCardinality(const Vector& y, size_t capacity_first,
                            size_t capacity_second) const;

  size_t candidate_count() const { return candidates_->size(); }

  /// The candidate set this index was built over.
  const CandidateLinkSet& candidates() const { return *candidates_; }

  size_t users_first() const { return users_first_; }
  size_t users_second() const { return users_second_; }

 private:
  bool IsRemoved(size_t id) const {
    return id < removed_.size() && removed_[id];
  }

  const CandidateLinkSet* candidates_;
  size_t users_first_ = 0;
  size_t users_second_ = 0;
  size_t indexed_count_ = 0;  // candidates already in the per-user lists
  std::vector<std::vector<size_t>> by_first_;
  std::vector<std::vector<size_t>> by_second_;
  std::vector<bool> removed_;  // tombstones awaiting CompactWith
  size_t removed_count_ = 0;
};

}  // namespace activeiter

#endif  // ACTIVEITER_GRAPH_INCIDENCE_H_
