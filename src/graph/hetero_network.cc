#include "src/graph/hetero_network.h"

#include <algorithm>

#include "src/common/string_util.h"
#include "src/linalg/sparse_ops.h"

namespace activeiter {

std::vector<RelationType> GraphDelta::TouchedRelations() const {
  std::vector<RelationType> out;
  auto note = [&out](const EdgeDelta& e) {
    if (std::find(out.begin(), out.end(), e.relation) == out.end()) {
      out.push_back(e.relation);
    }
  };
  for (const EdgeDelta& e : edges) note(e);
  for (const EdgeDelta& e : removed_edges) note(e);
  std::sort(out.begin(), out.end());
  return out;
}

size_t GraphDelta::NodeGrowth(NodeType type) const {
  size_t total = 0;
  for (const NodeDelta& n : nodes) {
    if (n.type == type) total += n.count;
  }
  return total;
}

HeteroNetwork::HeteroNetwork(NetworkSchema schema, std::string name)
    : schema_(std::move(schema)), name_(std::move(name)) {}

NodeId HeteroNetwork::AddNodes(NodeType type, size_t count) {
  ACTIVEITER_CHECK_MSG(schema_.HasNodeType(type), "node type not in schema");
  size_t& slot = node_counts_[static_cast<size_t>(type)];
  NodeId first = static_cast<NodeId>(slot);
  slot += count;
  return first;
}

size_t HeteroNetwork::NodeCount(NodeType type) const {
  return node_counts_[static_cast<size_t>(type)];
}

Status HeteroNetwork::AddEdge(RelationType relation, NodeId src, NodeId dst) {
  if (!schema_.HasRelation(relation)) {
    return Status::InvalidArgument(
        StrFormat("relation %s not in schema", RelationTypeName(relation)));
  }
  size_t src_count = NodeCount(RelationSourceType(relation));
  size_t dst_count = NodeCount(RelationTargetType(relation));
  if (src >= src_count || dst >= dst_count) {
    return Status::OutOfRange(StrFormat(
        "edge (%u -> %u) out of range for relation %s (%zu x %zu)", src, dst,
        RelationTypeName(relation), src_count, dst_count));
  }
  edges_[static_cast<size_t>(relation)].emplace_back(src, dst);
  return Status::OK();
}

Status HeteroNetwork::ValidateDelta(const GraphDelta& delta) const {
  std::array<size_t, kNumNodeTypes> counts = node_counts_;
  for (const NodeDelta& n : delta.nodes) {
    if (!schema_.HasNodeType(n.type)) {
      return Status::InvalidArgument(
          StrFormat("node type %s not in schema", NodeTypeName(n.type)));
    }
    counts[static_cast<size_t>(n.type)] += n.count;
  }
  for (const EdgeDelta& e : delta.edges) {
    if (!schema_.HasRelation(e.relation)) {
      return Status::InvalidArgument(StrFormat(
          "relation %s not in schema", RelationTypeName(e.relation)));
    }
    size_t src_count = counts[static_cast<size_t>(
        RelationSourceType(e.relation))];
    size_t dst_count = counts[static_cast<size_t>(
        RelationTargetType(e.relation))];
    if (e.src >= src_count || e.dst >= dst_count) {
      return Status::OutOfRange(StrFormat(
          "delta edge (%u -> %u) out of range for relation %s (%zu x %zu)",
          e.src, e.dst, RelationTypeName(e.relation), src_count, dst_count));
    }
  }
  // Each removal must hit an occurrence that still exists at its point in
  // the batch: stored count + same-batch additions − earlier removals.
  for (size_t i = 0; i < delta.removed_edges.size(); ++i) {
    const EdgeDelta& r = delta.removed_edges[i];
    if (!schema_.HasRelation(r.relation)) {
      return Status::InvalidArgument(StrFormat(
          "relation %s not in schema", RelationTypeName(r.relation)));
    }
    const auto same = [&r](const EdgeDelta& e) {
      return e.relation == r.relation && e.src == r.src && e.dst == r.dst;
    };
    size_t available = 0;
    for (const auto& [src, dst] : edges_[static_cast<size_t>(r.relation)]) {
      if (src == r.src && dst == r.dst) ++available;
    }
    available += static_cast<size_t>(
        std::count_if(delta.edges.begin(), delta.edges.end(), same));
    const size_t removed_before = static_cast<size_t>(std::count_if(
        delta.removed_edges.begin(), delta.removed_edges.begin() + i, same));
    if (removed_before >= available) {
      return Status::NotFound(StrFormat(
          "removal of edge (%u -> %u) relation %s: no stored occurrence "
          "left to remove",
          r.src, r.dst, RelationTypeName(r.relation)));
    }
  }
  return Status::OK();
}

Status HeteroNetwork::ApplyDelta(const GraphDelta& delta) {
  ACTIVEITER_RETURN_IF_ERROR(ValidateDelta(delta));
  for (const NodeDelta& n : delta.nodes) {
    node_counts_[static_cast<size_t>(n.type)] += n.count;
  }
  for (const EdgeDelta& e : delta.edges) {
    edges_[static_cast<size_t>(e.relation)].emplace_back(e.src, e.dst);
  }
  for (const EdgeDelta& r : delta.removed_edges) {
    auto& list = edges_[static_cast<size_t>(r.relation)];
    auto it = std::find(list.begin(), list.end(),
                        std::make_pair(r.src, r.dst));
    ACTIVEITER_CHECK_MSG(it != list.end(),
                         "validated removal missing at apply time");
    list.erase(it);
  }
  return Status::OK();
}

size_t HeteroNetwork::EdgeCount(RelationType relation) const {
  return edges_[static_cast<size_t>(relation)].size();
}

const std::vector<std::pair<NodeId, NodeId>>& HeteroNetwork::Edges(
    RelationType relation) const {
  return edges_[static_cast<size_t>(relation)];
}

SparseMatrix HeteroNetwork::AdjacencyMatrix(RelationType relation) const {
  size_t rows = NodeCount(RelationSourceType(relation));
  size_t cols = NodeCount(RelationTargetType(relation));
  std::vector<Triplet> trips;
  const auto& list = edges_[static_cast<size_t>(relation)];
  trips.reserve(list.size());
  for (const auto& [src, dst] : list) {
    trips.push_back({src, dst, 1.0});
  }
  SparseMatrix raw = SparseMatrix::FromTriplets(rows, cols, std::move(trips));
  // Duplicate insertions accumulate counts > 1; adjacency is 0/1.
  return Binarize(raw);
}

size_t HeteroNetwork::FollowOutDegree(NodeId u) const {
  size_t degree = 0;
  for (const auto& [src, dst] : edges_[static_cast<size_t>(
           RelationType::kFollow)]) {
    (void)dst;
    if (src == u) ++degree;
  }
  return degree;
}

size_t HeteroNetwork::TotalNodeCount() const {
  size_t total = 0;
  for (size_t c : node_counts_) total += c;
  return total;
}

size_t HeteroNetwork::TotalEdgeCount() const {
  size_t total = 0;
  for (const auto& e : edges_) total += e.size();
  return total;
}

std::string HeteroNetwork::ToString() const {
  return StrFormat("%s: users=%zu posts=%zu words=%zu locations=%zu "
                   "timestamps=%zu follow=%zu write=%zu at=%zu checkin=%zu",
                   name_.c_str(), NodeCount(NodeType::kUser),
                   NodeCount(NodeType::kPost), NodeCount(NodeType::kWord),
                   NodeCount(NodeType::kLocation),
                   NodeCount(NodeType::kTimestamp),
                   EdgeCount(RelationType::kFollow),
                   EdgeCount(RelationType::kWrite),
                   EdgeCount(RelationType::kAt),
                   EdgeCount(RelationType::kCheckin));
}

}  // namespace activeiter
