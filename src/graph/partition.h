// User-range partitioning of a candidate link set across serve shards.
//
// The sharded serve layer splits the candidate set H so that every shard
// owns a disjoint slice and ALL candidates of a given first-network user
// land on the same shard — that is what lets the shard router answer
// TopKFor(u1) and ScorePair(u1, ·) from one shard. The partition is
// block-striped over the u1 id space:
//
//   shard(u1) = (u1 / block_size) % num_shards
//
// i.e. contiguous ranges of `block_size` user ids rotate across shards.
// Striping (rather than one contiguous range per shard) keeps the slices
// balanced as the user id space grows online — new users always have the
// highest ids, and a static range split would funnel every arrival into
// the last shard.

#ifndef ACTIVEITER_GRAPH_PARTITION_H_
#define ACTIVEITER_GRAPH_PARTITION_H_

#include <cstddef>
#include <vector>

#include "src/common/status.h"
#include "src/graph/incidence.h"
#include "src/graph/types.h"

namespace activeiter {

/// The shard-assignment function of the serve layer. Pure and stateless:
/// the same (num_shards, block_size) always maps a user to the same shard,
/// so routing needs no lookup table and survives restarts.
struct ShardPartition {
  size_t num_shards = 1;
  /// Width of one contiguous u1 range; ranges rotate across shards.
  size_t block_size = 1;

  Status Validate() const;

  /// The shard owning every candidate whose first endpoint is `u1`.
  size_t ShardOfFirstUser(NodeId u1) const {
    return static_cast<size_t>(u1 / block_size) % num_shards;
  }
};

/// One shard's slice of a candidate set: the local candidate list plus the
/// global link id of each local candidate (local id i ↔ global id
/// global_ids[i]). Global ids are the ids of the unsharded set; they are
/// what the query API exposes, so results are comparable across shard
/// counts.
struct CandidateSlice {
  CandidateLinkSet links;
  std::vector<size_t> global_ids;
};

/// Splits `candidates` into `partition.num_shards` disjoint slices by
/// first-endpoint user range. Candidates keep their relative order inside
/// a slice, so per-slice global ids are strictly increasing.
std::vector<CandidateSlice> PartitionCandidates(
    const CandidateLinkSet& candidates, const ShardPartition& partition);

}  // namespace activeiter

#endif  // ACTIVEITER_GRAPH_PARTITION_H_
