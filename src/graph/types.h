// Typed identifiers for nodes, relations and networks.
//
// The attributed heterogeneous social network of the paper (Definition 1)
// contains node types {User, Post} plus attribute types {Word, Location,
// Timestamp}, and relation types {follow, write, at, checkin} plus the
// cross-network {anchor}. Attribute values are modelled as first-class
// nodes (as in the aligned network schema of Figure 2), which makes every
// meta-path segment an adjacency matrix.

#ifndef ACTIVEITER_GRAPH_TYPES_H_
#define ACTIVEITER_GRAPH_TYPES_H_

#include <cstdint>
#include <string>

namespace activeiter {

/// Node (and attribute) types of the aligned network schema.
enum class NodeType : uint8_t {
  kUser = 0,
  kPost = 1,
  kWord = 2,
  kLocation = 3,
  kTimestamp = 4,
};

inline constexpr int kNumNodeTypes = 5;

/// Intra-network relation types. The inter-network `anchor` relation is
/// handled separately by AlignedPair since it connects two networks.
enum class RelationType : uint8_t {
  kFollow = 0,   // User -> User (directed)
  kWrite = 1,    // User -> Post
  kAt = 2,       // Post -> Timestamp
  kCheckin = 3,  // Post -> Location
  kContain = 4,  // Post -> Word
};

inline constexpr int kNumRelationTypes = 5;

/// Index of a node within its type's contiguous id space.
using NodeId = uint32_t;

/// Which side of the aligned pair a network occupies.
enum class NetworkSide : uint8_t { kFirst = 0, kSecond = 1 };

/// Human-readable names ("User", "follow", ...).
const char* NodeTypeName(NodeType type);
const char* RelationTypeName(RelationType type);

/// Source/target node types of each relation per the schema.
NodeType RelationSourceType(RelationType type);
NodeType RelationTargetType(RelationType type);

}  // namespace activeiter

#endif  // ACTIVEITER_GRAPH_TYPES_H_
